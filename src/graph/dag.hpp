// Task-graph container.
//
// A Dag models an application as a directed acyclic graph: nodes are tasks
// carrying an abstract work amount (scaled into per-processor execution times
// by the platform's cost matrix), edges carry the data volume communicated
// from producer to consumer (scaled into communication times by the
// platform's link model).
//
// The container is append-only (tasks and edges can be added, never removed)
// which keeps TaskIds stable; structural transformations (e.g. transitive
// reduction) produce new Dags.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace tsched {

/// Dense task index; valid ids are [0, num_tasks).
using TaskId = std::int32_t;
inline constexpr TaskId kInvalidTask = -1;

/// One adjacency entry: the neighbour task and the data volume on the edge.
struct AdjEdge {
    TaskId task = kInvalidTask;
    double data = 0.0;

    friend bool operator==(const AdjEdge&, const AdjEdge&) = default;
};

class Dag {
public:
    Dag() = default;
    /// Pre-create `n` tasks with unit work and empty names.
    explicit Dag(std::size_t n) { tasks_.resize(n); }

    /// Add a task; returns its id. `work` is the abstract computation amount.
    TaskId add_task(double work = 1.0, std::string name = {});

    /// Add a directed edge u -> v carrying `data` volume.
    /// Throws std::invalid_argument on out-of-range ids, self-loops, or
    /// duplicate edges. Cycle creation is detected lazily by validate().
    void add_edge(TaskId u, TaskId v, double data = 0.0);

    [[nodiscard]] std::size_t num_tasks() const noexcept { return tasks_.size(); }
    [[nodiscard]] std::size_t num_edges() const noexcept { return num_edges_; }
    [[nodiscard]] bool empty() const noexcept { return tasks_.empty(); }

    [[nodiscard]] double work(TaskId v) const { return tasks_.at(check(v)).work; }
    void set_work(TaskId v, double w) { tasks_.at(check(v)).work = w; }

    [[nodiscard]] const std::string& name(TaskId v) const { return tasks_.at(check(v)).name; }
    void set_name(TaskId v, std::string name) { tasks_.at(check(v)).name = std::move(name); }

    /// Successors of v with edge data, in insertion order.
    [[nodiscard]] std::span<const AdjEdge> successors(TaskId v) const {
        return tasks_.at(check(v)).succs;
    }
    /// Predecessors of v with edge data, in insertion order.
    [[nodiscard]] std::span<const AdjEdge> predecessors(TaskId v) const {
        return tasks_.at(check(v)).preds;
    }

    [[nodiscard]] std::size_t out_degree(TaskId v) const { return successors(v).size(); }
    [[nodiscard]] std::size_t in_degree(TaskId v) const { return predecessors(v).size(); }

    [[nodiscard]] bool has_edge(TaskId u, TaskId v) const;
    /// Data volume on edge u -> v; throws std::out_of_range if absent.
    [[nodiscard]] double edge_data(TaskId u, TaskId v) const;
    /// Overwrite the data volume of an existing edge (used by the CCR
    /// calibration in workload/); throws std::out_of_range if absent.
    void set_edge_data(TaskId u, TaskId v, double data);

    /// Tasks with no predecessors / successors, ascending by id.
    [[nodiscard]] std::vector<TaskId> sources() const;
    [[nodiscard]] std::vector<TaskId> sinks() const;

    /// Sum of all task work / all edge data.
    [[nodiscard]] double total_work() const noexcept;
    [[nodiscard]] double total_data() const noexcept;

    /// True when the edge set is acyclic (a Dag built only through add_edge
    /// can still encode a cycle; generators call this as a postcondition).
    [[nodiscard]] bool is_acyclic() const;

    /// Check invariants (acyclicity, non-negative work/data); returns an
    /// empty string when valid, otherwise a diagnostic.
    [[nodiscard]] std::string validate() const;

    friend bool operator==(const Dag& a, const Dag& b);

private:
    struct TaskNode {
        double work = 1.0;
        std::string name;
        std::vector<AdjEdge> succs;
        std::vector<AdjEdge> preds;
    };

    [[nodiscard]] std::size_t check(TaskId v) const;

    std::vector<TaskNode> tasks_;
    std::size_t num_edges_ = 0;
};

}  // namespace tsched
