// DAG serialization.
//
// Three formats:
//   * DOT        — for visual inspection with graphviz (write-only);
//   * TSG        — "task scheduling graph", a line-oriented text format that
//                  round-trips exactly (write + read), used by tests and to
//                  archive generated experiment graphs;
//   * JSON       — a write-only export for downstream tooling.
//
// TSG grammar (one record per line, '#' starts a comment):
//   tsg <num_tasks> <num_edges>
//   t <id> <work> [name]
//   e <src> <dst> <data>
#pragma once

#include <iosfwd>
#include <string>

#include "graph/dag.hpp"

namespace tsched {

/// Graphviz DOT representation (node label: "name (work)" or id).
[[nodiscard]] std::string to_dot(const Dag& dag, const std::string& graph_name = "dag");

/// TSG text representation; round-trips through read_tsg.
[[nodiscard]] std::string to_tsg(const Dag& dag);
void write_tsg(std::ostream& os, const Dag& dag);

/// Parse a TSG document.  Throws std::runtime_error with a line-numbered
/// message on malformed input.
[[nodiscard]] Dag read_tsg(std::istream& is);
[[nodiscard]] Dag read_tsg_string(const std::string& text);

/// Save/load helpers; throw std::runtime_error when the file cannot be
/// opened.
void save_tsg(const std::string& path, const Dag& dag);
[[nodiscard]] Dag load_tsg(const std::string& path);

/// JSON export: {"tasks": [{"id","work","name"}...], "edges": [...]}.
[[nodiscard]] std::string to_json(const Dag& dag);

}  // namespace tsched
