#include "graph/dag.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace tsched {

CsrAdjacency::CsrAdjacency(const Dag& dag) {
    num_tasks_ = dag.num_tasks();
    const std::size_t m = dag.num_edges();
    succ_off_.assign(num_tasks_ + 1, 0);
    pred_off_.assign(num_tasks_ + 1, 0);
    succ_task_.resize(m);
    pred_task_.resize(m);
    succ_data_.resize(m);
    pred_data_.resize(m);
    for (std::size_t i = 0; i < num_tasks_; ++i) {
        const auto v = static_cast<TaskId>(i);
        succ_off_[i + 1] = succ_off_[i] + dag.out_degree(v);
        pred_off_[i + 1] = pred_off_[i] + dag.in_degree(v);
    }
    for (std::size_t i = 0; i < num_tasks_; ++i) {
        const auto v = static_cast<TaskId>(i);
        std::size_t s = succ_off_[i];
        for (const AdjEdge& e : dag.successors(v)) {
            succ_task_[s] = e.task;
            succ_data_[s] = e.data;
            ++s;
        }
        std::size_t p = pred_off_[i];
        for (const AdjEdge& e : dag.predecessors(v)) {
            pred_task_[p] = e.task;
            pred_data_[p] = e.data;
            ++p;
        }
    }
}

Dag& Dag::operator=(const Dag& other) {
    if (this != &other) {
        tasks_ = other.tasks_;
        num_edges_ = other.num_edges_;
        invalidate_csr();
    }
    return *this;
}

Dag& Dag::operator=(Dag&& other) noexcept {
    if (this != &other) {
        tasks_ = std::move(other.tasks_);
        num_edges_ = other.num_edges_;
        LockGuard lock(csr_mutex_);
        csr_cache_.reset();
    }
    return *this;
}

const CsrAdjacency& Dag::csr() const {
    LockGuard lock(csr_mutex_);
    if (!csr_cache_) csr_cache_ = std::make_unique<CsrAdjacency>(*this);
    return *csr_cache_;
}

void Dag::invalidate_csr() {
    LockGuard lock(csr_mutex_);
    csr_cache_.reset();
}

std::size_t Dag::check(TaskId v) const {
    if (v < 0 || static_cast<std::size_t>(v) >= tasks_.size()) {
        throw std::out_of_range("Dag: invalid TaskId " + std::to_string(v));
    }
    return static_cast<std::size_t>(v);
}

TaskId Dag::add_task(double work, std::string name) {
    if (!(work >= 0.0) || !std::isfinite(work)) {
        throw std::invalid_argument("Dag::add_task: work must be finite and non-negative");
    }
    if (tasks_.size() >= static_cast<std::size_t>(std::numeric_limits<TaskId>::max())) {
        throw std::length_error("Dag::add_task: too many tasks");
    }
    TaskNode node;
    node.work = work;
    node.name = std::move(name);
    tasks_.push_back(std::move(node));
    invalidate_csr();
    return static_cast<TaskId>(tasks_.size() - 1);
}

void Dag::add_edge(TaskId u, TaskId v, double data) {
    const std::size_t ui = check(u);
    const std::size_t vi = check(v);
    if (u == v) throw std::invalid_argument("Dag::add_edge: self-loop on task " + std::to_string(u));
    if (!(data >= 0.0) || !std::isfinite(data)) {
        throw std::invalid_argument("Dag::add_edge: data must be finite and non-negative");
    }
    if (has_edge(u, v)) {
        throw std::invalid_argument("Dag::add_edge: duplicate edge " + std::to_string(u) + " -> " +
                                    std::to_string(v));
    }
    tasks_[ui].succs.push_back({v, data});
    tasks_[vi].preds.push_back({u, data});
    ++num_edges_;
    invalidate_csr();
}

bool Dag::has_edge(TaskId u, TaskId v) const {
    for (const AdjEdge& e : successors(u)) {
        if (e.task == v) return true;
    }
    (void)check(v);
    return false;
}

double Dag::edge_data(TaskId u, TaskId v) const {
    for (const AdjEdge& e : successors(u)) {
        if (e.task == v) return e.data;
    }
    throw std::out_of_range("Dag::edge_data: no edge " + std::to_string(u) + " -> " +
                            std::to_string(v));
}

void Dag::set_edge_data(TaskId u, TaskId v, double data) {
    const std::size_t ui = check(u);
    const std::size_t vi = check(v);
    if (!(data >= 0.0) || !std::isfinite(data)) {
        throw std::invalid_argument("Dag::set_edge_data: data must be finite and non-negative");
    }
    bool found = false;
    for (AdjEdge& e : tasks_[ui].succs) {
        if (e.task == v) {
            e.data = data;
            found = true;
            break;
        }
    }
    if (!found) {
        throw std::out_of_range("Dag::set_edge_data: no edge " + std::to_string(u) + " -> " +
                                std::to_string(v));
    }
    for (AdjEdge& e : tasks_[vi].preds) {
        if (e.task == u) {
            e.data = data;
            break;
        }
    }
    invalidate_csr();
}

std::vector<TaskId> Dag::sources() const {
    std::vector<TaskId> out;
    for (std::size_t i = 0; i < tasks_.size(); ++i) {
        if (tasks_[i].preds.empty()) out.push_back(static_cast<TaskId>(i));
    }
    return out;
}

std::vector<TaskId> Dag::sinks() const {
    std::vector<TaskId> out;
    for (std::size_t i = 0; i < tasks_.size(); ++i) {
        if (tasks_[i].succs.empty()) out.push_back(static_cast<TaskId>(i));
    }
    return out;
}

double Dag::total_work() const noexcept {
    double sum = 0.0;
    for (const auto& t : tasks_) sum += t.work;
    return sum;
}

double Dag::total_data() const noexcept {
    double sum = 0.0;
    for (const auto& t : tasks_) {
        for (const AdjEdge& e : t.succs) sum += e.data;
    }
    return sum;
}

bool Dag::is_acyclic() const {
    // Kahn's algorithm: the graph is acyclic iff every task gets popped.
    std::vector<std::size_t> in_deg(tasks_.size());
    std::vector<TaskId> ready;
    for (std::size_t i = 0; i < tasks_.size(); ++i) {
        in_deg[i] = tasks_[i].preds.size();
        if (in_deg[i] == 0) ready.push_back(static_cast<TaskId>(i));
    }
    std::size_t popped = 0;
    while (!ready.empty()) {
        const TaskId v = ready.back();
        ready.pop_back();
        ++popped;
        for (const AdjEdge& e : tasks_[static_cast<std::size_t>(v)].succs) {
            if (--in_deg[static_cast<std::size_t>(e.task)] == 0) ready.push_back(e.task);
        }
    }
    return popped == tasks_.size();
}

std::string Dag::validate() const {
    for (std::size_t i = 0; i < tasks_.size(); ++i) {
        if (!(tasks_[i].work >= 0.0) || !std::isfinite(tasks_[i].work)) {
            return "task " + std::to_string(i) + " has invalid work";
        }
        for (const AdjEdge& e : tasks_[i].succs) {
            if (!(e.data >= 0.0) || !std::isfinite(e.data)) {
                std::ostringstream os;
                os << "edge " << i << " -> " << e.task << " has invalid data";
                return os.str();
            }
        }
    }
    if (!is_acyclic()) return "graph contains a cycle";
    return {};
}

bool operator==(const Dag& a, const Dag& b) {
    if (a.tasks_.size() != b.tasks_.size() || a.num_edges_ != b.num_edges_) return false;
    for (std::size_t i = 0; i < a.tasks_.size(); ++i) {
        const auto& ta = a.tasks_[i];
        const auto& tb = b.tasks_[i];
        if (ta.work != tb.work || ta.name != tb.name || ta.succs != tb.succs) return false;
    }
    return true;
}

}  // namespace tsched
