#include "graph/serialize.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace tsched {

namespace {
/// Print a double with round-trip precision (shortest exact form is overkill;
/// max_digits10 guarantees exact TSG round-trips).
std::string fmt_double(double x) {
    std::ostringstream os;
    os << std::setprecision(17) << x;
    return os.str();
}
}  // namespace

std::string to_dot(const Dag& dag, const std::string& graph_name) {
    std::ostringstream os;
    os << "digraph " << graph_name << " {\n";
    os << "  rankdir=TB;\n  node [shape=ellipse];\n";
    for (std::size_t i = 0; i < dag.num_tasks(); ++i) {
        const auto v = static_cast<TaskId>(i);
        os << "  n" << i << " [label=\"";
        if (!dag.name(v).empty()) {
            os << dag.name(v);
        } else {
            os << i;
        }
        os << "\\nw=" << dag.work(v) << "\"];\n";
    }
    for (std::size_t i = 0; i < dag.num_tasks(); ++i) {
        for (const AdjEdge& e : dag.successors(static_cast<TaskId>(i))) {
            os << "  n" << i << " -> n" << e.task << " [label=\"" << e.data << "\"];\n";
        }
    }
    os << "}\n";
    return os.str();
}

void write_tsg(std::ostream& os, const Dag& dag) {
    os << "# tsched task graph\n";
    os << "tsg " << dag.num_tasks() << ' ' << dag.num_edges() << '\n';
    for (std::size_t i = 0; i < dag.num_tasks(); ++i) {
        const auto v = static_cast<TaskId>(i);
        os << "t " << i << ' ' << fmt_double(dag.work(v));
        if (!dag.name(v).empty()) os << ' ' << dag.name(v);
        os << '\n';
    }
    for (std::size_t i = 0; i < dag.num_tasks(); ++i) {
        for (const AdjEdge& e : dag.successors(static_cast<TaskId>(i))) {
            os << "e " << i << ' ' << e.task << ' ' << fmt_double(e.data) << '\n';
        }
    }
}

std::string to_tsg(const Dag& dag) {
    std::ostringstream os;
    write_tsg(os, dag);
    return os.str();
}

Dag read_tsg(std::istream& is) {
    Dag dag;
    std::string line;
    std::size_t line_no = 0;
    bool header_seen = false;
    std::size_t expect_tasks = 0;
    std::size_t expect_edges = 0;
    std::size_t seen_edges = 0;

    auto fail = [&](const std::string& what) -> void {
        throw std::runtime_error("read_tsg: line " + std::to_string(line_no) + ": " + what);
    };

    while (std::getline(is, line)) {
        ++line_no;
        if (line.empty() || line[0] == '#') continue;
        std::istringstream ls(line);
        std::string tag;
        ls >> tag;
        if (tag == "tsg") {
            if (header_seen) fail("duplicate header");
            if (!(ls >> expect_tasks >> expect_edges)) fail("malformed header");
            header_seen = true;
        } else if (tag == "t") {
            if (!header_seen) fail("task record before header");
            std::size_t id = 0;
            double work = 0.0;
            if (!(ls >> id >> work)) fail("malformed task record");
            if (id != dag.num_tasks()) fail("task ids must be dense and ascending");
            std::string name;
            ls >> std::ws;
            std::getline(ls, name);
            dag.add_task(work, name);
        } else if (tag == "e") {
            if (!header_seen) fail("edge record before header");
            std::size_t u = 0;
            std::size_t v = 0;
            double data = 0.0;
            if (!(ls >> u >> v >> data)) fail("malformed edge record");
            if (u >= dag.num_tasks() || v >= dag.num_tasks()) fail("edge endpoint out of range");
            try {
                dag.add_edge(static_cast<TaskId>(u), static_cast<TaskId>(v), data);
            } catch (const std::invalid_argument& err) {
                fail(err.what());
            }
            ++seen_edges;
        } else {
            fail("unknown record tag '" + tag + "'");
        }
    }
    if (!header_seen) throw std::runtime_error("read_tsg: missing header");
    if (dag.num_tasks() != expect_tasks) {
        throw std::runtime_error("read_tsg: header declares " + std::to_string(expect_tasks) +
                                 " tasks, found " + std::to_string(dag.num_tasks()));
    }
    if (seen_edges != expect_edges) {
        throw std::runtime_error("read_tsg: header declares " + std::to_string(expect_edges) +
                                 " edges, found " + std::to_string(seen_edges));
    }
    const std::string diag = dag.validate();
    if (!diag.empty()) throw std::runtime_error("read_tsg: invalid graph: " + diag);
    return dag;
}

Dag read_tsg_string(const std::string& text) {
    std::istringstream is(text);
    return read_tsg(is);
}

void save_tsg(const std::string& path, const Dag& dag) {
    std::ofstream out(path);
    if (!out) throw std::runtime_error("save_tsg: cannot open " + path);
    write_tsg(out, dag);
    if (!out) throw std::runtime_error("save_tsg: write failed for " + path);
}

Dag load_tsg(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("load_tsg: cannot open " + path);
    return read_tsg(in);
}

namespace {
std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char ch : s) {
        switch (ch) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            default: out += ch;
        }
    }
    return out;
}
}  // namespace

std::string to_json(const Dag& dag) {
    std::ostringstream os;
    os << "{\"tasks\":[";
    for (std::size_t i = 0; i < dag.num_tasks(); ++i) {
        const auto v = static_cast<TaskId>(i);
        if (i) os << ',';
        os << "{\"id\":" << i << ",\"work\":" << fmt_double(dag.work(v)) << ",\"name\":\""
           << json_escape(dag.name(v)) << "\"}";
    }
    os << "],\"edges\":[";
    bool first = true;
    for (std::size_t i = 0; i < dag.num_tasks(); ++i) {
        for (const AdjEdge& e : dag.successors(static_cast<TaskId>(i))) {
            if (!first) os << ',';
            first = false;
            os << "{\"src\":" << i << ",\"dst\":" << e.task
               << ",\"data\":" << fmt_double(e.data) << "}";
        }
    }
    os << "]}";
    return os.str();
}

}  // namespace tsched
