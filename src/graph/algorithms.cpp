#include "graph/algorithms.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace tsched {

std::vector<TaskId> topological_order(const Dag& dag) {
    const std::size_t n = dag.num_tasks();
    std::vector<std::size_t> in_deg(n);
    // Min-heap on TaskId makes the order deterministic and independent of
    // edge insertion order.
    std::priority_queue<TaskId, std::vector<TaskId>, std::greater<>> ready;
    for (std::size_t i = 0; i < n; ++i) {
        in_deg[i] = dag.in_degree(static_cast<TaskId>(i));
        if (in_deg[i] == 0) ready.push(static_cast<TaskId>(i));
    }
    std::vector<TaskId> order;
    order.reserve(n);
    while (!ready.empty()) {
        const TaskId v = ready.top();
        ready.pop();
        order.push_back(v);
        for (const AdjEdge& e : dag.successors(v)) {
            if (--in_deg[static_cast<std::size_t>(e.task)] == 0) ready.push(e.task);
        }
    }
    if (order.size() != n) throw std::invalid_argument("topological_order: graph has a cycle");
    return order;
}

std::vector<int> top_levels(const Dag& dag) {
    std::vector<int> level(dag.num_tasks(), 0);
    for (const TaskId v : topological_order(dag)) {
        for (const AdjEdge& e : dag.successors(v)) {
            auto& lv = level[static_cast<std::size_t>(e.task)];
            lv = std::max(lv, level[static_cast<std::size_t>(v)] + 1);
        }
    }
    return level;
}

std::vector<int> bottom_levels(const Dag& dag) {
    std::vector<int> level(dag.num_tasks(), 0);
    const auto order = topological_order(dag);
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
        for (const AdjEdge& e : dag.successors(*it)) {
            auto& lv = level[static_cast<std::size_t>(*it)];
            lv = std::max(lv, level[static_cast<std::size_t>(e.task)] + 1);
        }
    }
    return level;
}

int height(const Dag& dag) {
    if (dag.empty()) return 0;
    const auto levels = top_levels(dag);
    return *std::max_element(levels.begin(), levels.end()) + 1;
}

namespace {
/// Longest-path distance to a sink for every task (work on nodes, optional
/// data on edges), plus the successor chosen on that longest path.
struct LongestPaths {
    std::vector<double> dist;   // dist[v] includes work(v)
    std::vector<TaskId> next;   // successor on the longest path, or kInvalidTask
};

LongestPaths longest_paths_to_sink(const Dag& dag, bool include_edge_data) {
    LongestPaths lp;
    lp.dist.assign(dag.num_tasks(), 0.0);
    lp.next.assign(dag.num_tasks(), kInvalidTask);
    const auto order = topological_order(dag);
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
        const TaskId v = *it;
        double best = 0.0;
        TaskId best_next = kInvalidTask;
        for (const AdjEdge& e : dag.successors(v)) {
            const double via = (include_edge_data ? e.data : 0.0) +
                               lp.dist[static_cast<std::size_t>(e.task)];
            if (via > best || (via == best && best_next != kInvalidTask && e.task < best_next)) {
                best = via;
                best_next = e.task;
            }
        }
        lp.dist[static_cast<std::size_t>(v)] = dag.work(v) + best;
        lp.next[static_cast<std::size_t>(v)] = best_next;
    }
    return lp;
}
}  // namespace

double critical_path_length(const Dag& dag, bool include_edge_data) {
    if (dag.empty()) return 0.0;
    const auto lp = longest_paths_to_sink(dag, include_edge_data);
    return *std::max_element(lp.dist.begin(), lp.dist.end());
}

std::vector<TaskId> critical_path(const Dag& dag, bool include_edge_data) {
    if (dag.empty()) return {};
    const auto lp = longest_paths_to_sink(dag, include_edge_data);
    TaskId start = 0;
    for (std::size_t i = 1; i < lp.dist.size(); ++i) {
        if (lp.dist[i] > lp.dist[static_cast<std::size_t>(start)]) {
            start = static_cast<TaskId>(i);
        }
    }
    std::vector<TaskId> path;
    for (TaskId v = start; v != kInvalidTask; v = lp.next[static_cast<std::size_t>(v)]) {
        path.push_back(v);
    }
    return path;
}

std::vector<bool> transitive_closure(const Dag& dag) {
    const std::size_t n = dag.num_tasks();
    // Row-per-task bitset over 64-bit words; process in reverse topological
    // order so each row is the union of successor rows.
    const std::size_t words = (n + 63) / 64;
    std::vector<std::uint64_t> bits(n * words, 0);
    const auto order = topological_order(dag);
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
        const auto v = static_cast<std::size_t>(*it);
        for (const AdjEdge& e : dag.successors(*it)) {
            const auto s = static_cast<std::size_t>(e.task);
            bits[v * words + s / 64] |= (1ULL << (s % 64));
            for (std::size_t w = 0; w < words; ++w) bits[v * words + w] |= bits[s * words + w];
        }
    }
    std::vector<bool> out(n * n, false);
    for (std::size_t u = 0; u < n; ++u) {
        for (std::size_t v = 0; v < n; ++v) {
            out[u * n + v] = (bits[u * words + v / 64] >> (v % 64)) & 1ULL;
        }
    }
    return out;
}

bool reaches(const Dag& dag, TaskId u, TaskId v) {
    if (u == v) return false;
    std::vector<bool> seen(dag.num_tasks(), false);
    std::vector<TaskId> stack{u};
    seen[static_cast<std::size_t>(u)] = true;
    while (!stack.empty()) {
        const TaskId cur = stack.back();
        stack.pop_back();
        for (const AdjEdge& e : dag.successors(cur)) {
            if (e.task == v) return true;
            if (!seen[static_cast<std::size_t>(e.task)]) {
                seen[static_cast<std::size_t>(e.task)] = true;
                stack.push_back(e.task);
            }
        }
    }
    return false;
}

Dag transitive_reduction(const Dag& dag) {
    const std::size_t n = dag.num_tasks();
    const auto closure = transitive_closure(dag);
    Dag out;
    for (std::size_t i = 0; i < n; ++i) {
        out.add_task(dag.work(static_cast<TaskId>(i)), dag.name(static_cast<TaskId>(i)));
    }
    for (std::size_t u = 0; u < n; ++u) {
        for (const AdjEdge& e : dag.successors(static_cast<TaskId>(u))) {
            // u -> e.task is redundant iff some other successor w of u
            // reaches e.task.
            bool redundant = false;
            for (const AdjEdge& other : dag.successors(static_cast<TaskId>(u))) {
                if (other.task == e.task) continue;
                if (closure[static_cast<std::size_t>(other.task) * n +
                            static_cast<std::size_t>(e.task)]) {
                    redundant = true;
                    break;
                }
            }
            if (!redundant) out.add_edge(static_cast<TaskId>(u), e.task, e.data);
        }
    }
    return out;
}

std::size_t weakly_connected_components(const Dag& dag) {
    const std::size_t n = dag.num_tasks();
    std::vector<bool> seen(n, false);
    std::size_t components = 0;
    std::vector<TaskId> stack;
    for (std::size_t start = 0; start < n; ++start) {
        if (seen[start]) continue;
        ++components;
        seen[start] = true;
        stack.push_back(static_cast<TaskId>(start));
        while (!stack.empty()) {
            const TaskId v = stack.back();
            stack.pop_back();
            auto visit = [&](TaskId w) {
                if (!seen[static_cast<std::size_t>(w)]) {
                    seen[static_cast<std::size_t>(w)] = true;
                    stack.push_back(w);
                }
            };
            for (const AdjEdge& e : dag.successors(v)) visit(e.task);
            for (const AdjEdge& e : dag.predecessors(v)) visit(e.task);
        }
    }
    return components;
}

namespace {
std::vector<TaskId> closure_from(const Dag& dag, TaskId v, bool forward) {
    std::vector<bool> seen(dag.num_tasks(), false);
    std::vector<TaskId> stack{v};
    std::vector<TaskId> out;
    while (!stack.empty()) {
        const TaskId cur = stack.back();
        stack.pop_back();
        const auto adj = forward ? dag.successors(cur) : dag.predecessors(cur);
        for (const AdjEdge& e : adj) {
            if (!seen[static_cast<std::size_t>(e.task)]) {
                seen[static_cast<std::size_t>(e.task)] = true;
                out.push_back(e.task);
                stack.push_back(e.task);
            }
        }
    }
    std::sort(out.begin(), out.end());
    return out;
}
}  // namespace

std::vector<TaskId> ancestors(const Dag& dag, TaskId v) { return closure_from(dag, v, false); }
std::vector<TaskId> descendants(const Dag& dag, TaskId v) { return closure_from(dag, v, true); }

}  // namespace tsched
