#include "sim/contention.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <vector>

#include "sim/placement_table.hpp"
#include "trace/trace.hpp"

namespace tsched::sim {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

struct Ports {
    std::vector<double> send_free;  // per processor outbound port
    std::vector<double> recv_free;  // per processor inbound port
};

struct PlanStats {
    std::size_t transfers = 0;
    double transfer_time = 0.0;
    double max_wait = 0.0;
    std::vector<Transfer> log;
};

/// Plan (and with `commit` also book) the input transfers and start time of
/// placing `task` on `q`.  Transfers are sequenced in predecessor order;
/// within one candidate they interact through the port copies, so two
/// remote inputs into the same consumer serialize on its inbound port.
double plan_start(const Problem& problem, const std::vector<std::vector<std::pair<double, ProcId>>>& done,
                  TaskId task, ProcId q, double proc_free, Ports& ports, bool commit,
                  PlanStats* stats) {
    const Dag& dag = problem.dag();
    const LinkModel& links = problem.machine().links();
    double ready = 0.0;
    for (const AdjEdge& e : dag.predecessors(task)) {
        const auto& instances = done[static_cast<std::size_t>(e.task)];
        if (instances.empty()) return kInf;
        // Producer instance with the best nominal (contention-free) arrival.
        double best_nominal = kInf;
        double best_finish = 0.0;
        ProcId best_src = q;
        for (const auto& [finish, src] : instances) {
            const double nominal = finish + links.comm_time(e.data, src, q);
            if (nominal < best_nominal) {
                best_nominal = nominal;
                best_finish = finish;
                best_src = src;
            }
        }
        double arrival = 0.0;
        if (best_src == q) {
            arrival = best_finish;  // local: no ports involved
        } else {
            const double dur = links.comm_time(e.data, best_src, q);
            const double start = std::max({best_finish,
                                           ports.send_free[static_cast<std::size_t>(best_src)],
                                           ports.recv_free[static_cast<std::size_t>(q)]});
            arrival = start + dur;
            ports.send_free[static_cast<std::size_t>(best_src)] = arrival;
            ports.recv_free[static_cast<std::size_t>(q)] = arrival;
            if (commit && stats != nullptr) {
                ++stats->transfers;
                stats->transfer_time += dur;
                stats->max_wait = std::max(stats->max_wait, start - best_finish);
                stats->log.push_back({e.task, task, best_src, q, start, arrival, e.data});
            }
        }
        ready = std::max(ready, arrival);
    }
    return std::max(ready, proc_free);
}
}  // namespace

ContentionResult simulate_contended(const Schedule& schedule, const Problem& problem) {
    TSCHED_SPAN("sim/contended");
    const std::size_t procs = schedule.num_procs();

    // Same decision extraction as sim::simulate: the canonical placement
    // enumeration plus each processor's planned run order.
    const PlacementTable table = build_placement_table(schedule);
    const std::size_t total = table.entries.size();

    std::vector<std::size_t> next(procs, 0);
    std::vector<double> proc_free(procs, 0.0);
    Ports ports{std::vector<double>(procs, 0.0), std::vector<double>(procs, 0.0)};
    std::vector<std::vector<std::pair<double, ProcId>>> done(schedule.num_tasks());

    ContentionResult result;
    result.finish_times.assign(total, kInf);
    PlanStats stats;
    std::size_t completed = 0;
    while (completed < total) {
        // Evaluate every runnable head on a copy of the port state; commit
        // the earliest starter.
        std::size_t best_proc = procs;
        double best_start = kInf;
        for (std::size_t p = 0; p < procs; ++p) {
            if (next[p] >= table.proc_order[p].size()) continue;
            const auto& head = table.entries[table.proc_order[p][next[p]]];
            Ports scratch = ports;
            const double start = plan_start(problem, done, head.planned.task,
                                            static_cast<ProcId>(p), proc_free[p], scratch,
                                            false, nullptr);
            if (start < best_start) {
                best_start = start;
                best_proc = p;
            }
        }
        if (best_proc == procs) {
            throw std::invalid_argument(
                "simulate_contended: schedule deadlocked (head placements wait on tasks "
                "queued behind them)");
        }
        const auto& head = table.entries[table.proc_order[best_proc][next[best_proc]]];
        const double start =
            plan_start(problem, done, head.planned.task, static_cast<ProcId>(best_proc),
                       proc_free[best_proc], ports, true, &stats);
        const double finish =
            start + problem.exec_time(head.planned.task, static_cast<ProcId>(best_proc));
        result.finish_times[head.global_index] = finish;
        proc_free[best_proc] = finish;
        done[static_cast<std::size_t>(head.planned.task)].push_back(
            {finish, static_cast<ProcId>(best_proc)});
        ++next[best_proc];
        ++completed;
        result.makespan = std::max(result.makespan, finish);
    }
    result.transfers = stats.transfers;
    result.transfer_time_total = stats.transfer_time;
    result.max_port_wait = stats.max_wait;
    result.transfer_log = std::move(stats.log);
    TSCHED_COUNT_ADD("sim_transfers", result.transfers);
    return result;
}

}  // namespace tsched::sim
