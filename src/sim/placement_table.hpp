// Canonical enumeration of a schedule's placements, shared by the
// simulators and the trace exporters.
//
// Entries are task-major in each task's insertion order (primary placement
// first, duplicates after) — the order SimResult::finish_times and
// ContentionResult::finish_times use — plus each processor's planned run
// order (by planned start, ties by task id, so replays are deterministic).
#pragma once

#include <cstddef>
#include <vector>

#include "sched/schedule.hpp"

namespace tsched::sim {

struct PlacementTable {
    struct Entry {
        Placement planned;
        std::size_t global_index = 0;
    };
    std::vector<Entry> entries;                        ///< global enumeration
    std::vector<std::size_t> task_first;               ///< first entry of task v
                                                       ///< (num_tasks + 1 sentinel)
    std::vector<std::vector<std::size_t>> proc_order;  ///< per proc: entry ids
                                                       ///< by planned start

    [[nodiscard]] std::size_t num_placements_of(std::size_t task) const {
        return task_first[task + 1] - task_first[task];
    }
};

/// Throws std::invalid_argument when some task has no placement.
[[nodiscard]] PlacementTable build_placement_table(const Schedule& schedule);

}  // namespace tsched::sim
