// Discrete-event execution of a static schedule.
//
// The simulator takes only the *decisions* of a schedule — which placements
// exist and in what order each processor runs them — and re-derives all
// start/finish times from scratch by propagating completion events through
// the placement-constraint graph.  For a valid schedule under the static
// cost model, the re-derived makespan must equal Schedule::makespan()
// exactly; this gives the test suite an independent cross-check of every
// scheduler's bookkeeping.
//
// The same engine runs the robustness experiments: execution and
// communication times are perturbed multiplicatively and the *realised*
// makespan of the unchanged static decisions is measured.
#pragma once

#include <cstdint>
#include <vector>

#include "platform/problem.hpp"
#include "sched/schedule.hpp"
#include "util/rng.hpp"

namespace tsched::sim {

struct SimResult {
    double makespan = 0.0;
    std::vector<double> proc_busy;   ///< busy time per processor
    std::size_t remote_messages = 0; ///< edges served across processors
    double comm_volume = 0.0;        ///< total data moved across processors
    /// Re-derived finish time per placement, in the same order as
    /// enumerate_placements(schedule) (per task, insertion order).
    std::vector<double> finish_times;
};

/// Execute the schedule's decisions under the problem's cost model.
/// Throws std::invalid_argument when the schedule is structurally
/// inconsistent (missing placements / circular constraints).
[[nodiscard]] SimResult simulate(const Schedule& schedule, const Problem& problem);

/// Like simulate, but every execution time is multiplied by a factor drawn
/// from U(1 - noise, 1 + noise) and every communication time by an
/// independent such factor (noise in [0, 1)).  Models runtime deviation from
/// the static estimates while keeping the static decisions fixed.
///
/// Rng stream-consumption contract: the call consumes exactly
/// `num_placements + total_predecessor_edges` uniform draws from `rng`, all
/// of them up front and in a fixed order — one duration factor per placement
/// in enumerate_placements order (task-major, insertion order within a
/// task), then one communication factor per (task, predecessor-edge) pair in
/// task order.  The draw sequence is therefore a function of the schedule's
/// shape alone, never of event interleaving, which makes the result — and
/// the rng state afterwards — bit-identical for the same seed across
/// platforms and repeat runs.  Callers sharing one Rng across replays rely
/// on this to get a reproducible replay sequence.
[[nodiscard]] SimResult simulate_noisy(const Schedule& schedule, const Problem& problem,
                                       double noise, Rng& rng);

}  // namespace tsched::sim
