#include "sim/placement_table.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace tsched::sim {

PlacementTable build_placement_table(const Schedule& schedule) {
    PlacementTable table;
    table.task_first.assign(schedule.num_tasks() + 1, 0);
    for (std::size_t v = 0; v < schedule.num_tasks(); ++v) {
        const auto places = schedule.placements(static_cast<TaskId>(v));
        if (places.empty()) {
            throw std::invalid_argument("simulate: task " + std::to_string(v) +
                                        " has no placement");
        }
        table.task_first[v] = table.entries.size();
        for (const Placement& pl : places) {
            table.entries.push_back({pl, table.entries.size()});
        }
    }
    table.task_first[schedule.num_tasks()] = table.entries.size();

    table.proc_order.assign(schedule.num_procs(), {});
    for (const auto& e : table.entries) {
        table.proc_order[static_cast<std::size_t>(e.planned.proc)].push_back(e.global_index);
    }
    for (auto& order : table.proc_order) {
        std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
            const Placement& pa = table.entries[a].planned;
            const Placement& pb = table.entries[b].planned;
            if (pa.start != pb.start) return pa.start < pb.start;
            return pa.task < pb.task;
        });
    }
    return table;
}

}  // namespace tsched::sim
