// ThreadedExecutor: run a static schedule for real.
//
// Each simulated processor is backed by one worker thread; workers execute
// their placements in schedule order, each placement waiting until every
// predecessor task has completed somewhere (any instance satisfies a
// dependency, mirroring the duplication semantics of the cost model).  The
// user supplies the task body; the executor supplies ordering, so this is
// the end-to-end proof that a tsched schedule drives a real parallel
// computation correctly.
//
// ExecutorOptions add the runtime-hardening layer: a task body that throws
// can be retried up to `max_attempts` times with exponential backoff, and a
// worker whose placement keeps failing can be quarantined — its remaining
// queue moves to an overflow pool that the surviving workers drain (the
// executor-level analogue of sched/repair.hpp's remap-pending policy).
#pragma once

#include <chrono>
#include <functional>
#include <vector>

#include "graph/dag.hpp"
#include "sched/schedule.hpp"

namespace tsched::sim {

struct ExecutorOptions {
    /// Execution attempts per placement (>= 1); attempts after the first are
    /// retries of a body that threw.
    std::size_t max_attempts = 1;
    /// Sleep before retry k is `retry_backoff * 2^(k-1)`; zero disables.
    std::chrono::nanoseconds retry_backoff{0};
    /// After a placement exhausts its attempts, quarantine the worker and
    /// hand its remaining placements to the other workers instead of
    /// failing the run.  A placement that also fails on a second worker
    /// stops execution (no endless hot-potato).
    bool reassign_on_failure = false;
};

struct ExecutionReport {
    double wall_seconds = 0.0;
    /// Wall-clock completion (seconds since execution start) of each task's
    /// first finished instance.
    std::vector<double> task_completion;
    /// Number of placements each worker executed (including stolen ones).
    std::vector<std::size_t> placements_run;
    /// Failed execution attempts that were retried.
    std::size_t retries = 0;
    /// Placements executed by a different worker than planned.
    std::size_t migrations = 0;
    /// Workers quarantined after exhausting a placement's attempts.
    std::vector<bool> worker_quarantined;
};

/// Body invoked per executed placement: (task, processor).  Must be
/// thread-safe across distinct processors.
using TaskBody = std::function<void(TaskId, ProcId)>;

/// Execute `schedule` of `dag` with one thread per processor.  Throws
/// std::invalid_argument when the schedule is incomplete or sized
/// differently from the DAG.  Exceptions thrown by the body stop execution
/// (after the retry/quarantine ladder of `options` is exhausted) and
/// propagate after all workers exit.
[[nodiscard]] ExecutionReport execute_threaded(const Schedule& schedule, const Dag& dag,
                                               const TaskBody& body,
                                               const ExecutorOptions& options);

/// Fail-fast overload: one attempt, no reassignment (the pre-hardening
/// behaviour).
[[nodiscard]] ExecutionReport execute_threaded(const Schedule& schedule, const Dag& dag,
                                               const TaskBody& body);

}  // namespace tsched::sim
