// ThreadedExecutor: run a static schedule for real.
//
// Each simulated processor is backed by one worker thread; workers execute
// their placements in schedule order, each placement waiting until every
// predecessor task has completed somewhere (any instance satisfies a
// dependency, mirroring the duplication semantics of the cost model).  The
// user supplies the task body; the executor supplies ordering, so this is
// the end-to-end proof that a tsched schedule drives a real parallel
// computation correctly.
#pragma once

#include <functional>
#include <vector>

#include "graph/dag.hpp"
#include "sched/schedule.hpp"

namespace tsched::sim {

struct ExecutionReport {
    double wall_seconds = 0.0;
    /// Wall-clock completion (seconds since execution start) of each task's
    /// first finished instance.
    std::vector<double> task_completion;
    /// Number of placements each worker executed.
    std::vector<std::size_t> placements_run;
};

/// Body invoked per executed placement: (task, processor).  Must be
/// thread-safe across distinct processors.
using TaskBody = std::function<void(TaskId, ProcId)>;

/// Execute `schedule` of `dag` with one thread per processor.  Throws
/// std::invalid_argument when the schedule is incomplete or sized
/// differently from the DAG.  Exceptions thrown by the body stop execution
/// and propagate after all workers exit.
[[nodiscard]] ExecutionReport execute_threaded(const Schedule& schedule, const Dag& dag,
                                               const TaskBody& body);

}  // namespace tsched::sim
