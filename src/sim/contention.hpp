// Contention-aware execution of a static schedule.
//
// The scheduling cost model of the HEFT-family literature (and of every
// scheduler in this library) is contention-free: any number of transfers
// may overlap.  Real interconnects serialize: this simulator replays a
// schedule's decisions under a one-port model — every processor has one
// outbound and one inbound link (full-duplex NIC) and transfers occupy both
// endpoints' ports FIFO — and measures the *realised* makespan.
//
// The gap between the contention-free and contended makespans quantifies
// how badly a schedule oversubscribes the network (experiment E16);
// duplication-based schedules, which convert transfers into local
// recomputation, should degrade least.
#pragma once

#include <vector>

#include "platform/problem.hpp"
#include "sched/schedule.hpp"
#include "sim/event_sim.hpp"

namespace tsched::sim {

/// One committed cross-processor transfer under the one-port model.
struct Transfer {
    TaskId producer = kInvalidTask;
    TaskId consumer = kInvalidTask;
    ProcId from = kInvalidProc;
    ProcId to = kInvalidProc;
    double start = 0.0;   ///< moment both ports engage (after queueing)
    double finish = 0.0;  ///< arrival at the receiver
    double data = 0.0;

    [[nodiscard]] double duration() const noexcept { return finish - start; }
};

struct ContentionResult {
    double makespan = 0.0;
    std::size_t transfers = 0;        ///< cross-processor transfers performed
    double transfer_time_total = 0.0; ///< total port-busy time
    double max_port_wait = 0.0;       ///< worst single transfer queueing delay
    /// Re-derived finish time per placement, in the same order as
    /// SimResult::finish_times (per task, insertion order).
    std::vector<double> finish_times;
    /// Every committed transfer in execution order (the trace exporter draws
    /// these as the communication tracks).
    std::vector<Transfer> transfer_log;
};

/// Execute the schedule's decisions under the one-port contention model.
/// Each consumer pulls every input from the producer instance with the best
/// *nominal* (contention-free) arrival; the chosen transfer then queues on
/// the sender's outbound and the receiver's inbound port.  Same-processor
/// data passes without occupying ports.  Throws std::invalid_argument for
/// incomplete/deadlocked schedules (same conditions as sim::simulate).
[[nodiscard]] ContentionResult simulate_contended(const Schedule& schedule,
                                                  const Problem& problem);

}  // namespace tsched::sim
