#include "sim/faults.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "analysis/fault_lints.hpp"
#include "analysis/schedule_lints.hpp"
#include "sim/placement_table.hpp"
#include "trace/trace.hpp"

namespace tsched::sim {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kTimeEps = 1e-9;

/// Mutable state of the continuous faulty run.  Rebuilt from the repaired
/// schedule after every crash, with the executed prefix carried over.
struct RunState {
    Schedule schedule;  ///< the current plan
    PlacementTable table;
    std::vector<double> realized_start;   ///< successful attempt start, per entry
    std::vector<double> realized_finish;  ///< kInf until executed
    std::vector<double> busy_added;       ///< chain busy incl. failed attempts
    std::vector<bool> executed;
    std::vector<std::size_t> next_index;  ///< per-proc cursor into proc_order
    std::vector<double> proc_free;
    std::vector<std::vector<std::pair<double, ProcId>>> done;  ///< per task: (finish, proc)
    std::size_t completed = 0;

    explicit RunState(const Schedule& plan)
        : schedule(plan),
          table(build_placement_table(schedule)),
          realized_start(table.entries.size(), kInf),
          realized_finish(table.entries.size(), kInf),
          busy_added(table.entries.size(), 0.0),
          executed(table.entries.size(), false),
          next_index(schedule.num_procs(), 0),
          proc_free(schedule.num_procs(), 0.0),
          done(schedule.num_tasks()) {}
};

/// Executed prefix plus the bookkeeping the public FrozenPlacement omits.
struct FrozenInfo {
    FrozenPlacement fp;
    double busy = 0.0;
};

/// One latency probe per repaired crash: the gap between the crash and the
/// first (re)start of any task whose placements were lost.
struct LatencyProbe {
    double crash_time = 0.0;
    std::vector<bool> watched;  ///< per task: lost and re-planned by the repair
    double latency = -1.0;
};

[[noreturn]] void repair_failed(const RepairPolicy& policy, ProcId proc, double time,
                                analysis::Diagnostics& diags, const std::string& why) {
    diags.add(analysis::Code::kFaultRepairInvalid,
              analysis::SourceLoc{kInvalidTask, proc, -1},
              "policy '" + policy.name() + "' " + why + " after the crash of P" +
                  std::to_string(proc) + " at t=" + std::to_string(time));
    throw std::invalid_argument("simulate_faulty: repair produced an invalid schedule\n" +
                                analysis::render_text(diags));
}

/// Rebuild the run state around the repaired plan: map every frozen
/// placement onto a new table entry at its realised times, restore the
/// per-task completion sets and per-proc cursors, and reject repairs that
/// lose the prefix, resurrect dead processors, or schedule before the crash
/// (all TS0602).
RunState rebuild(Schedule&& repaired, const std::vector<FrozenInfo>& frozen,
                 const std::vector<bool>& dead, double crash_time,
                 const RepairPolicy& policy, ProcId crashed_proc) {
    RunState st{repaired};
    analysis::Diagnostics diags;

    for (const FrozenInfo& info : frozen) {
        const FrozenPlacement& f = info.fp;
        const auto v = static_cast<std::size_t>(f.task);
        bool mapped = false;
        for (std::size_t i = st.table.task_first[v]; i < st.table.task_first[v + 1]; ++i) {
            const Placement& pl = st.table.entries[i].planned;
            if (st.executed[i] || pl.proc != f.proc ||
                std::abs(pl.start - f.start) > kTimeEps) {
                continue;
            }
            st.executed[i] = true;
            st.realized_start[i] = f.start;
            st.realized_finish[i] = f.finish;
            st.busy_added[i] = info.busy;
            st.done[v].push_back({f.finish, f.proc});
            ++st.completed;
            mapped = true;
            break;
        }
        if (!mapped) {
            repair_failed(policy, crashed_proc, crash_time, diags,
                          "lost executed placement of task " + std::to_string(f.task) +
                              " on P" + std::to_string(f.proc));
        }
    }

    for (std::size_t p = 0; p < st.schedule.num_procs(); ++p) {
        const auto& order = st.table.proc_order[p];
        std::size_t prefix = 0;
        while (prefix < order.size() && st.executed[order[prefix]]) {
            st.proc_free[p] =
                std::max(st.proc_free[p], st.realized_finish[order[prefix]]);
            ++prefix;
        }
        st.next_index[p] = prefix;
        for (std::size_t i = prefix; i < order.size(); ++i) {
            const std::size_t e = order[i];
            if (st.executed[e]) {
                repair_failed(policy, crashed_proc, crash_time, diags,
                              "interleaved executed and unexecuted placements on P" +
                                  std::to_string(p));
            }
            const Placement& pl = st.table.entries[e].planned;
            if (dead[p]) {
                repair_failed(policy, crashed_proc, crash_time, diags,
                              "scheduled task " + std::to_string(pl.task) +
                                  " on dead processor P" + std::to_string(p));
            }
            if (pl.start < crash_time - kTimeEps) {
                repair_failed(policy, crashed_proc, crash_time, diags,
                              "scheduled task " + std::to_string(pl.task) +
                                  " before the crash time");
            }
        }
    }
    return st;
}

}  // namespace

const char* fault_event_kind_name(FaultEventKind kind) noexcept {
    switch (kind) {
        case FaultEventKind::kCrash: return "crash";
        case FaultEventKind::kTransientFailure: return "transient-failure";
        case FaultEventKind::kRepair: return "repair";
        case FaultEventKind::kMigration: return "migration";
        case FaultEventKind::kReexecution: return "reexecution";
    }
    return "?";
}

FaultPlan crash_busiest(const Schedule& schedule, double fraction) {
    if (!(fraction >= 0.0) || !std::isfinite(fraction)) {
        throw std::invalid_argument("crash_busiest: fraction must be finite and >= 0");
    }
    std::vector<double> busy(schedule.num_procs(), 0.0);
    for (std::size_t v = 0; v < schedule.num_tasks(); ++v) {
        for (const Placement& pl : schedule.placements(static_cast<TaskId>(v))) {
            busy[static_cast<std::size_t>(pl.proc)] += pl.duration();
        }
    }
    ProcId busiest = 0;
    for (std::size_t p = 1; p < busy.size(); ++p) {
        if (busy[p] > busy[static_cast<std::size_t>(busiest)]) {
            busiest = static_cast<ProcId>(p);
        }
    }
    FaultPlan plan;
    plan.crashes.push_back({busiest, fraction * schedule.makespan()});
    return plan;
}

FaultPlan random_crash_plan(const Schedule& schedule, Rng& rng, double min_fraction,
                            double max_fraction) {
    if (!(min_fraction >= 0.0) || !(max_fraction >= min_fraction)) {
        throw std::invalid_argument(
            "random_crash_plan: need 0 <= min_fraction <= max_fraction");
    }
    FaultPlan plan;
    const auto proc = static_cast<ProcId>(
        rng.uniform_int(0, static_cast<std::int64_t>(schedule.num_procs()) - 1));
    const double fraction = rng.uniform(min_fraction, max_fraction);
    plan.crashes.push_back({proc, fraction * schedule.makespan()});
    return plan;
}

FaultReport simulate_faulty(const Schedule& schedule, const Problem& problem,
                            const FaultPlan& plan, const RepairPolicy& policy) {
    TSCHED_SPAN("sim/simulate_faulty");
    {
        analysis::Diagnostics plan_diags;
        analysis::lint_fault_plan(plan, problem, plan_diags);
        if (plan_diags.has_errors()) {
            throw std::invalid_argument("simulate_faulty: invalid fault plan\n" +
                                        analysis::render_text(plan_diags));
        }
    }
#ifdef TSCHED_DEBUG_CHECKS
    analysis::run_debug_checks(schedule, problem);
#endif

    const Dag& dag = problem.dag();
    const LinkModel& links = problem.machine().links();

    FaultReport report;
    report.static_makespan = schedule.makespan();

    // Cross-processor transfer time under the plan's slowdown windows; a
    // window applies when the producing instance finishes inside it.
    auto comm_time = [&](double data, ProcId from, ProcId to, double producer_finish) {
        double t = links.comm_time(data, from, to);
        if (from == to) return t;
        for (const LinkSlowdown& s : plan.slowdowns) {
            if (producer_finish >= s.begin && producer_finish < s.end &&
                (s.src == kInvalidProc || s.src == from) &&
                (s.dst == kInvalidProc || s.dst == to)) {
                t *= s.factor;
            }
        }
        return t;
    };

    std::vector<std::size_t> budget(problem.num_tasks(), 0);
    for (const TaskFault& f : plan.task_faults) {
        budget[static_cast<std::size_t>(f.task)] += f.failures;
    }

    std::vector<ProcCrash> crashes = plan.crashes;
    std::sort(crashes.begin(), crashes.end(), [](const ProcCrash& a, const ProcCrash& b) {
        return a.time != b.time ? a.time < b.time : a.proc < b.proc;
    });

    RunState st{schedule};
    std::vector<bool> dead(problem.num_procs(), false);
    std::vector<LatencyProbe> probes;
    std::size_t crash_idx = 0;
    double time_floor = 0.0;
    std::vector<double> proc_busy(problem.num_procs(), 0.0);

    // Earliest time all of v's inputs are available on p from completed
    // instances; +inf while some predecessor has no completed instance.
    auto data_ready = [&](TaskId v, ProcId p) {
        double ready = 0.0;
        for (const AdjEdge& e : dag.predecessors(v)) {
            const auto& instances = st.done[static_cast<std::size_t>(e.task)];
            if (instances.empty()) return kInf;
            double best = kInf;
            for (const auto& [finish, from] : instances) {
                best = std::min(best, finish + comm_time(e.data, from, p, finish));
            }
            ready = std::max(ready, best);
        }
        return ready;
    };

    auto apply_crash = [&](const ProcCrash& crash) {
        TSCHED_COUNT("fault_crashes");
        dead[static_cast<std::size_t>(crash.proc)] = true;
        report.events.push_back(
            {FaultEventKind::kCrash, crash.time, kInvalidTask, crash.proc});

        // Abort the in-flight placement on the dead processor.  Committed
        // starts are non-decreasing, so nothing that starts at/after the
        // crash is committed yet, and the aborted instance's output cannot
        // have been consumed (any consumer would start after its finish).
        std::vector<Placement> lost;
        std::vector<bool> aborted(problem.num_tasks(), false);
        const auto& order = st.table.proc_order[static_cast<std::size_t>(crash.proc)];
        for (std::size_t i = 0; i < st.next_index[static_cast<std::size_t>(crash.proc)];
             ++i) {
            const std::size_t e = order[i];
            if (!st.executed[e] || st.realized_finish[e] <= crash.time + kTimeEps) continue;
            const auto v = static_cast<std::size_t>(st.table.entries[e].planned.task);
            auto& instances = st.done[v];
            instances.erase(std::find(instances.begin(), instances.end(),
                                      std::make_pair(st.realized_finish[e], crash.proc)));
            proc_busy[static_cast<std::size_t>(crash.proc)] -= st.busy_added[e];
            st.executed[e] = false;
            st.realized_start[e] = kInf;
            st.realized_finish[e] = kInf;
            --st.completed;
            aborted[v] = true;
            TSCHED_COUNT("fault_aborted_placements");
            lost.push_back(st.table.entries[e].planned);
        }
        for (std::size_t i = st.next_index[static_cast<std::size_t>(crash.proc)];
             i < order.size(); ++i) {
            lost.push_back(st.table.entries[order[i]].planned);
        }
        if (lost.empty()) return;  // the processor had nothing left to do

        RepairContext ctx;
        ctx.problem = &problem;
        ctx.crashed_proc = crash.proc;
        ctx.crash_time = crash.time;
        ctx.dead = dead;
        ctx.lost = std::move(lost);
        std::vector<FrozenInfo> frozen;
        for (std::size_t e = 0; e < st.table.entries.size(); ++e) {
            const Placement& pl = st.table.entries[e].planned;
            if (st.executed[e]) {
                const bool in_flight = st.realized_finish[e] > crash.time + kTimeEps;
                ctx.frozen.push_back({pl.task, pl.proc, st.realized_start[e],
                                      st.realized_finish[e], in_flight});
                frozen.push_back({ctx.frozen.back(), st.busy_added[e]});
            } else if (pl.proc != crash.proc) {
                ctx.pending.push_back(pl);
            }
        }
        if (ctx.live_procs() == 0) {
            throw std::runtime_error(
                "simulate_faulty: every processor crashed; nothing can repair that");
        }

        TSCHED_COUNT("fault_repairs");
        report.events.push_back(
            {FaultEventKind::kRepair, crash.time, kInvalidTask, crash.proc});
        Schedule repaired = policy.repair(ctx);
        {
            analysis::Diagnostics diags;
            analysis::ScheduleLintOptions options;
            options.quality = false;
            analysis::lint_schedule(repaired, problem, diags, options);
            if (diags.has_errors()) {
                repair_failed(policy, crash.proc, crash.time, diags,
                              "failed the schedule validity lints");
            }
        }

        // Repair accounting: which lost tasks moved, which re-run, and how
        // many planned placements were not re-created.
        const std::size_t old_unexecuted = st.table.entries.size() - st.completed;
        LatencyProbe probe;
        probe.crash_time = crash.time;
        probe.watched.assign(problem.num_tasks(), false);
        std::vector<bool> lost_task(problem.num_tasks(), false);
        for (const Placement& pl : ctx.lost) {
            lost_task[static_cast<std::size_t>(pl.task)] = true;
        }
        std::vector<bool> counted(problem.num_tasks(), false);
        for (std::size_t v = 0; v < problem.num_tasks(); ++v) {
            if (!lost_task[v]) continue;
            for (const Placement& pl : repaired.placements(static_cast<TaskId>(v))) {
                if (pl.start < crash.time - kTimeEps) continue;  // frozen replay
                probe.watched[v] = true;
                if (aborted[v]) {
                    report.events.push_back({FaultEventKind::kReexecution, crash.time,
                                             static_cast<TaskId>(v), pl.proc});
                    ++report.reexecuted_tasks;
                    aborted[v] = false;  // count each task once
                }
                if (pl.proc != crash.proc && !counted[v]) {
                    report.events.push_back({FaultEventKind::kMigration, crash.time,
                                             static_cast<TaskId>(v), pl.proc});
                    ++report.migrated_tasks;
                    TSCHED_COUNT("fault_migrated_placements");
                    counted[v] = true;
                }
            }
        }
        probes.push_back(std::move(probe));

        st = rebuild(std::move(repaired), frozen, dead, crash.time, policy, crash.proc);
        const std::size_t new_unexecuted = st.table.entries.size() - st.completed;
        if (new_unexecuted < old_unexecuted) {
            const std::size_t dropped = old_unexecuted - new_unexecuted;
            report.dropped_placements += dropped;
            TSCHED_COUNT_ADD("fault_dropped_placements", dropped);
        }
        time_floor = std::max(time_floor, crash.time);
    };

    const std::size_t procs = problem.num_procs();
    while (true) {
        // Pick the runnable head placement with the earliest start.
        std::size_t best_proc = procs;
        double best_start = kInf;
        for (std::size_t p = 0; p < procs; ++p) {
            if (st.next_index[p] >= st.table.proc_order[p].size()) continue;
            const auto& entry = st.table.entries[st.table.proc_order[p][st.next_index[p]]];
            const double ready = data_ready(entry.planned.task, static_cast<ProcId>(p));
            if (ready == kInf) continue;
            const double start = std::max({st.proc_free[p], ready, time_floor});
            if (start < best_start) {
                best_start = start;
                best_proc = p;
            }
        }

        if (st.completed == st.table.entries.size()) {
            if (crash_idx < crashes.size()) {
                apply_crash(crashes[crash_idx]);
                ++crash_idx;
                continue;  // a trailing crash may have aborted in-flight work
            }
            break;
        }
        if (crash_idx < crashes.size() && best_start >= crashes[crash_idx].time) {
            apply_crash(crashes[crash_idx]);
            ++crash_idx;
            continue;
        }
        if (best_proc == procs) {
            throw std::invalid_argument(
                "simulate_faulty: schedule deadlocked (head placements wait on tasks "
                "queued behind them)");
        }

        const std::size_t entry_id = st.table.proc_order[best_proc][st.next_index[best_proc]];
        const auto v = st.table.entries[entry_id].planned.task;
        const double dur = problem.exec_time(v, static_cast<ProcId>(best_proc));
        double start = best_start;
        double busy = 0.0;
        // Transient faults: each failed attempt occupies the processor for
        // the full duration, then retries immediately on the same processor.
        while (budget[static_cast<std::size_t>(v)] > 0) {
            --budget[static_cast<std::size_t>(v)];
            ++report.retries;
            TSCHED_COUNT("fault_transient_failures");
            report.events.push_back({FaultEventKind::kTransientFailure, start + dur, v,
                                     static_cast<ProcId>(best_proc)});
            busy += dur;
            start += dur;
        }
        const double finish = start + dur;
        busy += dur;
        st.executed[entry_id] = true;
        st.realized_start[entry_id] = start;
        st.realized_finish[entry_id] = finish;
        st.busy_added[entry_id] = busy;
        proc_busy[best_proc] += busy;
        st.proc_free[best_proc] = finish;
        st.done[static_cast<std::size_t>(v)].push_back(
            {finish, static_cast<ProcId>(best_proc)});
        ++st.next_index[best_proc];
        ++st.completed;
        for (LatencyProbe& probe : probes) {
            if (probe.latency < 0.0 && probe.watched[static_cast<std::size_t>(v)]) {
                probe.latency = best_start - probe.crash_time;
            }
        }
    }

    // Assemble the report from the final state.
    report.sim.proc_busy = proc_busy;
    report.sim.finish_times.assign(st.table.entries.size(), kInf);
    for (std::size_t e = 0; e < st.table.entries.size(); ++e) {
        report.sim.finish_times[st.table.entries[e].global_index] = st.realized_finish[e];
        report.sim.makespan = std::max(report.sim.makespan, st.realized_finish[e]);
    }
    // Communication accounting: which instance actually served each input of
    // each primary placement (remote edges counted once per consumer).
    for (std::size_t v = 0; v < st.schedule.num_tasks(); ++v) {
        const Placement& consumer = st.schedule.primary(static_cast<TaskId>(v));
        for (const AdjEdge& e : dag.predecessors(static_cast<TaskId>(v))) {
            double best = kInf;
            ProcId best_from = consumer.proc;
            for (const auto& [finish, from] : st.done[static_cast<std::size_t>(e.task)]) {
                const double avail = finish + comm_time(e.data, from, consumer.proc, finish);
                if (avail < best) {
                    best = avail;
                    best_from = from;
                }
            }
            if (best_from != consumer.proc) {
                ++report.sim.remote_messages;
                report.sim.comm_volume += e.data;
            }
        }
    }
    for (const LatencyProbe& probe : probes) {
        report.repair_latency = std::max(report.repair_latency, std::max(probe.latency, 0.0));
    }
    report.degradation =
        report.static_makespan > 0.0 ? report.sim.makespan / report.static_makespan : 1.0;
    report.repaired = std::move(st.schedule);
    return report;
}

}  // namespace tsched::sim
