#include "sim/executor.hpp"

#include <chrono>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>

namespace tsched::sim {

ExecutionReport execute_threaded(const Schedule& schedule, const Dag& dag,
                                 const TaskBody& body) {
    if (!schedule.complete()) {
        throw std::invalid_argument("execute_threaded: schedule is incomplete");
    }
    if (schedule.num_tasks() != dag.num_tasks()) {
        throw std::invalid_argument("execute_threaded: schedule does not match dag");
    }
    const std::size_t n = schedule.num_tasks();
    const std::size_t procs = schedule.num_procs();

    // All completion state lives behind one mutex + condition variable;
    // schedules here have at most a few thousand tasks, so the simplicity is
    // worth far more than a lock-free design.
    std::mutex mutex;
    std::condition_variable cv;
    std::vector<bool> done(n, false);
    bool failed = false;
    std::exception_ptr first_error;

    ExecutionReport report;
    report.placements_run.assign(procs, 0);
    std::vector<double> completion(n, -1.0);

    const auto start_time = std::chrono::steady_clock::now();
    auto elapsed = [&] {
        return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_time)
            .count();
    };

    std::vector<std::vector<Placement>> orders(procs);
    for (std::size_t p = 0; p < procs; ++p) {
        orders[p] = schedule.processor_timeline(static_cast<ProcId>(p));
    }

    auto preds_done = [&](TaskId v) {
        for (const AdjEdge& e : dag.predecessors(v)) {
            if (!done[static_cast<std::size_t>(e.task)]) return false;
        }
        return true;
    };

    auto worker = [&](std::size_t p) {
        for (const Placement& pl : orders[p]) {
            {
                std::unique_lock lock(mutex);
                cv.wait(lock, [&] { return failed || preds_done(pl.task); });
                if (failed) return;
            }
            try {
                body(pl.task, static_cast<ProcId>(p));
            } catch (...) {
                std::lock_guard lock(mutex);
                if (!first_error) first_error = std::current_exception();
                failed = true;
                cv.notify_all();
                return;
            }
            {
                std::lock_guard lock(mutex);
                if (!done[static_cast<std::size_t>(pl.task)]) {
                    done[static_cast<std::size_t>(pl.task)] = true;
                    completion[static_cast<std::size_t>(pl.task)] = elapsed();
                }
                ++report.placements_run[p];
            }
            cv.notify_all();
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(procs);
    for (std::size_t p = 0; p < procs; ++p) threads.emplace_back(worker, p);
    for (auto& t : threads) t.join();

    if (first_error) std::rethrow_exception(first_error);
    report.wall_seconds = elapsed();
    report.task_completion = std::move(completion);
    return report;
}

}  // namespace tsched::sim
