#include "sim/executor.hpp"

#include <chrono>
#include <cstddef>
#include <deque>
#include <exception>
#include <stdexcept>
#include <thread>

#include "obs/obs.hpp"
#include "trace/trace.hpp"
#include "util/thread_annotations.hpp"

#if TSCHED_OBS_ON
#include "util/stopwatch.hpp"
#endif

namespace tsched::sim {

namespace {

// All shared execution state, previously a bundle of locals captured by
// reference in worker lambdas, lives here as members so the lock ownership
// is expressible: everything mutable is GUARDED_BY(mutex_), helpers that
// assume the lock carry _locked names and TSCHED_REQUIRES.  Behaviour is
// identical to the pre-refactor function — same lock, same condition
// variable, same wake predicate (spelled as an explicit wait loop).
class ExecContext {
public:
    ExecContext(const Schedule& schedule, const Dag& dag, const TaskBody& body,
                const ExecutorOptions& options)
        : dag_(dag), body_(body), options_(options) {
        const std::size_t n = schedule.num_tasks();
        procs_ = schedule.num_procs();
        done_.assign(n, false);
        completion_.assign(n, -1.0);
        quarantined_.assign(procs_, false);
        report_.placements_run.assign(procs_, 0);
        orders_.resize(procs_);
        for (std::size_t p = 0; p < procs_; ++p) {
            orders_[p] = schedule.processor_timeline(static_cast<ProcId>(p));
            remaining_ += orders_[p].size();
        }
    }

    ExecutionReport run() TSCHED_EXCLUDES(mutex_) {
        start_time_ = std::chrono::steady_clock::now();
        std::vector<std::thread> threads;
        threads.reserve(procs_);
        for (std::size_t p = 0; p < procs_; ++p) {
            threads.emplace_back([this, p] { worker(p); });
        }
        for (auto& t : threads) t.join();

        // Workers have exited; the lock is still taken so the annotated
        // members are read with the discipline the analysis can check.
        LockGuard lock(mutex_);
        if (first_error_) std::rethrow_exception(first_error_);
        report_.wall_seconds = elapsed();
        report_.task_completion = std::move(completion_);
        report_.worker_quarantined = std::move(quarantined_);
        return std::move(report_);
    }

private:
    [[nodiscard]] double elapsed() const {
        return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_time_)
            .count();
    }

    [[nodiscard]] bool preds_done_locked(TaskId v) const TSCHED_REQUIRES(mutex_) {
        for (const AdjEdge& e : dag_.predecessors(v)) {
            if (!done_[static_cast<std::size_t>(e.task)]) return false;
        }
        return true;
    }

    /// First overflow placement whose predecessors are all done.
    [[nodiscard]] std::deque<Placement>::iterator runnable_overflow_locked()
        TSCHED_REQUIRES(mutex_) {
        for (auto it = overflow_.begin(); it != overflow_.end(); ++it) {
            if (preds_done_locked(it->task)) return it;
        }
        return overflow_.end();
    }

    /// Worker p's next own placement is ready to run.
    [[nodiscard]] bool own_next_runnable_locked(std::size_t p, std::size_t idx) const
        TSCHED_REQUIRES(mutex_) {
        return !quarantined_[p] && idx < orders_[p].size() &&
               preds_done_locked(orders_[p][idx].task);
    }

    /// Run one placement through the attempt ladder.  Returns the error that
    /// exhausted the attempts, or nullptr on success.  Called unlocked; the
    /// body runs outside any lock.
    [[nodiscard]] std::exception_ptr attempt_all(const Placement& pl, std::size_t p)
        TSCHED_EXCLUDES(mutex_) {
        for (std::size_t attempt = 1;; ++attempt) {
            try {
#if TSCHED_OBS_ON
                const Stopwatch attempt_watch;
                body_(pl.task, static_cast<ProcId>(p));
                TSCHED_OBS_RECORD("executor/attempt_ms", attempt_watch.elapsed_ms());
#else
                body_(pl.task, static_cast<ProcId>(p));
#endif
                return nullptr;
            } catch (...) {
                if (attempt >= options_.max_attempts) return std::current_exception();
                {
                    LockGuard lock(mutex_);
                    ++report_.retries;
                }
                TSCHED_COUNT("executor_retries");
                if (options_.retry_backoff.count() > 0) {
                    const auto backoff =
                        options_.retry_backoff * (std::int64_t{1} << (attempt - 1));
                    // Record the *planned* backoff (the retry ladder's shape);
                    // the sleep itself may overshoot under load.
                    using BackoffMs = std::chrono::duration<double, std::milli>;
                    TSCHED_OBS_RECORD("executor/retry_backoff_ms",
                                      BackoffMs(backoff).count());
                    std::this_thread::sleep_for(backoff);
                }
            }
        }
    }

    void worker(std::size_t p) TSCHED_EXCLUDES(mutex_) {
        std::size_t idx = 0;
        while (true) {
            Placement pl{};
            bool from_overflow = false;
            {
                UniqueLock lock(mutex_);
                while (!(failed_ || remaining_ == 0 || own_next_runnable_locked(p, idx) ||
                         runnable_overflow_locked() != overflow_.end())) {
                    cv_.wait(lock);
                }
                if (failed_ || remaining_ == 0) return;
                if (own_next_runnable_locked(p, idx)) {
                    pl = orders_[p][idx++];
                } else {
                    const auto it = runnable_overflow_locked();
                    pl = *it;
                    overflow_.erase(it);
                    from_overflow = true;
                }
            }

            const std::exception_ptr err = attempt_all(pl, p);
            if (!err) {
                {
                    LockGuard lock(mutex_);
                    if (!done_[static_cast<std::size_t>(pl.task)]) {
                        done_[static_cast<std::size_t>(pl.task)] = true;
                        completion_[static_cast<std::size_t>(pl.task)] = elapsed();
                    }
                    ++report_.placements_run[p];
                    if (from_overflow) {
                        ++report_.migrations;
                        TSCHED_COUNT("executor_migrations");
                    }
                    --remaining_;
                }
                cv_.notify_all();
                continue;
            }

            UniqueLock lock(mutex_);
            if (!from_overflow && options_.reassign_on_failure) {
                bool other_alive = false;
                for (std::size_t q = 0; q < procs_; ++q) {
                    if (q != p && !quarantined_[q]) other_alive = true;
                }
                if (other_alive) {
                    // Quarantine: hand this and every remaining own placement
                    // to the surviving workers and exit the thread.
                    quarantined_[p] = true;
                    TSCHED_COUNT("executor_quarantines");
                    overflow_.push_back(pl);
                    for (; idx < orders_[p].size(); ++idx) overflow_.push_back(orders_[p][idx]);
                    lock.unlock();
                    cv_.notify_all();
                    return;
                }
            }
            if (!first_error_) first_error_ = err;
            failed_ = true;
            lock.unlock();
            cv_.notify_all();
            return;
        }
    }

    // Immutable after construction (workers only read them).
    const Dag& dag_;
    const TaskBody& body_;
    const ExecutorOptions& options_;
    std::size_t procs_ = 0;
    std::vector<std::vector<Placement>> orders_;
    std::chrono::steady_clock::time_point start_time_;

    Mutex mutex_;
    CondVar cv_;
    std::vector<bool> done_ TSCHED_GUARDED_BY(mutex_);
    bool failed_ TSCHED_GUARDED_BY(mutex_) = false;
    std::exception_ptr first_error_ TSCHED_GUARDED_BY(mutex_);
    /// Placements abandoned by quarantined workers, in their original order;
    /// any idle worker may pick up any runnable entry.
    std::deque<Placement> overflow_ TSCHED_GUARDED_BY(mutex_);
    std::vector<bool> quarantined_ TSCHED_GUARDED_BY(mutex_);
    std::size_t remaining_ TSCHED_GUARDED_BY(mutex_) = 0;
    ExecutionReport report_ TSCHED_GUARDED_BY(mutex_);
    std::vector<double> completion_ TSCHED_GUARDED_BY(mutex_);
};

}  // namespace

ExecutionReport execute_threaded(const Schedule& schedule, const Dag& dag,
                                 const TaskBody& body, const ExecutorOptions& options) {
    if (!schedule.complete()) {
        throw std::invalid_argument("execute_threaded: schedule is incomplete");
    }
    if (schedule.num_tasks() != dag.num_tasks()) {
        throw std::invalid_argument("execute_threaded: schedule does not match dag");
    }
    if (options.max_attempts == 0) {
        throw std::invalid_argument("execute_threaded: max_attempts must be >= 1");
    }
    ExecContext context(schedule, dag, body, options);
    return context.run();
}

ExecutionReport execute_threaded(const Schedule& schedule, const Dag& dag,
                                 const TaskBody& body) {
    return execute_threaded(schedule, dag, body, ExecutorOptions{});
}

}  // namespace tsched::sim
