#include "sim/executor.hpp"

#include <chrono>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "trace/trace.hpp"

namespace tsched::sim {

ExecutionReport execute_threaded(const Schedule& schedule, const Dag& dag,
                                 const TaskBody& body, const ExecutorOptions& options) {
    if (!schedule.complete()) {
        throw std::invalid_argument("execute_threaded: schedule is incomplete");
    }
    if (schedule.num_tasks() != dag.num_tasks()) {
        throw std::invalid_argument("execute_threaded: schedule does not match dag");
    }
    if (options.max_attempts == 0) {
        throw std::invalid_argument("execute_threaded: max_attempts must be >= 1");
    }
    const std::size_t n = schedule.num_tasks();
    const std::size_t procs = schedule.num_procs();

    // All completion state lives behind one mutex + condition variable;
    // schedules here have at most a few thousand tasks, so the simplicity is
    // worth far more than a lock-free design.
    std::mutex mutex;
    std::condition_variable cv;
    std::vector<bool> done(n, false);
    bool failed = false;
    std::exception_ptr first_error;
    // Placements abandoned by quarantined workers, in their original order;
    // any idle worker may pick up any runnable entry.
    std::deque<Placement> overflow;
    std::vector<bool> quarantined(procs, false);
    std::size_t remaining = 0;

    ExecutionReport report;
    report.placements_run.assign(procs, 0);
    std::vector<double> completion(n, -1.0);

    const auto start_time = std::chrono::steady_clock::now();
    auto elapsed = [&] {
        return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_time)
            .count();
    };

    std::vector<std::vector<Placement>> orders(procs);
    for (std::size_t p = 0; p < procs; ++p) {
        orders[p] = schedule.processor_timeline(static_cast<ProcId>(p));
        remaining += orders[p].size();
    }

    auto preds_done = [&](TaskId v) {
        for (const AdjEdge& e : dag.predecessors(v)) {
            if (!done[static_cast<std::size_t>(e.task)]) return false;
        }
        return true;
    };

    // Run one placement through the attempt ladder.  Returns the error that
    // exhausted the attempts, or nullptr on success.
    auto attempt_all = [&](const Placement& pl, std::size_t p) -> std::exception_ptr {
        for (std::size_t attempt = 1;; ++attempt) {
            try {
                body(pl.task, static_cast<ProcId>(p));
                return nullptr;
            } catch (...) {
                if (attempt >= options.max_attempts) return std::current_exception();
                {
                    std::lock_guard lock(mutex);
                    ++report.retries;
                }
                TSCHED_COUNT("executor_retries");
                if (options.retry_backoff.count() > 0) {
                    std::this_thread::sleep_for(options.retry_backoff *
                                                (std::int64_t{1} << (attempt - 1)));
                }
            }
        }
    };

    auto worker = [&](std::size_t p) {
        std::size_t idx = 0;
        while (true) {
            Placement pl{};
            bool from_overflow = false;
            {
                std::unique_lock lock(mutex);
                auto runnable_overflow = [&] {
                    for (auto it = overflow.begin(); it != overflow.end(); ++it) {
                        if (preds_done(it->task)) return it;
                    }
                    return overflow.end();
                };
                cv.wait(lock, [&] {
                    return failed || remaining == 0 ||
                           (!quarantined[p] && idx < orders[p].size() &&
                            preds_done(orders[p][idx].task)) ||
                           runnable_overflow() != overflow.end();
                });
                if (failed || remaining == 0) return;
                if (!quarantined[p] && idx < orders[p].size() &&
                    preds_done(orders[p][idx].task)) {
                    pl = orders[p][idx++];
                } else {
                    const auto it = runnable_overflow();
                    pl = *it;
                    overflow.erase(it);
                    from_overflow = true;
                }
            }

            const std::exception_ptr err = attempt_all(pl, p);
            if (!err) {
                {
                    std::lock_guard lock(mutex);
                    if (!done[static_cast<std::size_t>(pl.task)]) {
                        done[static_cast<std::size_t>(pl.task)] = true;
                        completion[static_cast<std::size_t>(pl.task)] = elapsed();
                    }
                    ++report.placements_run[p];
                    if (from_overflow) {
                        ++report.migrations;
                        TSCHED_COUNT("executor_migrations");
                    }
                    --remaining;
                }
                cv.notify_all();
                continue;
            }

            std::unique_lock lock(mutex);
            if (!from_overflow && options.reassign_on_failure) {
                bool other_alive = false;
                for (std::size_t q = 0; q < procs; ++q) {
                    if (q != p && !quarantined[q]) other_alive = true;
                }
                if (other_alive) {
                    // Quarantine: hand this and every remaining own placement
                    // to the surviving workers and exit the thread.
                    quarantined[p] = true;
                    TSCHED_COUNT("executor_quarantines");
                    overflow.push_back(pl);
                    for (; idx < orders[p].size(); ++idx) overflow.push_back(orders[p][idx]);
                    lock.unlock();
                    cv.notify_all();
                    return;
                }
            }
            if (!first_error) first_error = err;
            failed = true;
            lock.unlock();
            cv.notify_all();
            return;
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(procs);
    for (std::size_t p = 0; p < procs; ++p) threads.emplace_back(worker, p);
    for (auto& t : threads) t.join();

    if (first_error) std::rethrow_exception(first_error);
    report.wall_seconds = elapsed();
    report.task_completion = std::move(completion);
    report.worker_quarantined = std::move(quarantined);
    return report;
}

ExecutionReport execute_threaded(const Schedule& schedule, const Dag& dag,
                                 const TaskBody& body) {
    return execute_threaded(schedule, dag, body, ExecutorOptions{});
}

}  // namespace tsched::sim
