#include "sim/event_sim.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <vector>

#include "sim/placement_table.hpp"
#include "trace/trace.hpp"

#ifdef TSCHED_DEBUG_CHECKS
#include "analysis/schedule_lints.hpp"
#endif

namespace tsched::sim {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

/// Event-driven core shared by the exact and noisy runs.  `duration(e)` is
/// the execution time of entry e on its processor; `comm(v, pred_idx, from,
/// to)` the communication time of v's pred_idx-th input edge between the
/// given processors.
template <typename DurationFn, typename CommFn>
SimResult run(const Schedule& schedule, const Problem& problem, DurationFn&& duration,
              CommFn&& comm) {
    const CsrAdjacency& csr = problem.dag().csr();
    const PlacementTable table = build_placement_table(schedule);
    const std::size_t total = table.entries.size();
    TSCHED_COUNT_ADD("sim_events", total);
    const std::size_t procs = schedule.num_procs();

    SimResult result;
    result.proc_busy.assign(procs, 0.0);
    result.finish_times.assign(total, kInf);

    std::vector<std::size_t> next_index(procs, 0);  // cursor into proc_order
    std::vector<double> proc_free(procs, 0.0);
    // Completed instances per task: (finish, proc).
    std::vector<std::vector<std::pair<double, ProcId>>> done(schedule.num_tasks());

    // Earliest time all of v's inputs are available on p from *completed*
    // instances; +inf while some predecessor has no completed instance.
    auto data_ready = [&](TaskId v, ProcId p) {
        double ready = 0.0;
        const auto preds = csr.pred_tasks(v);
        for (std::size_t i = 0; i < preds.size(); ++i) {
            const auto& instances = done[static_cast<std::size_t>(preds[i])];
            if (instances.empty()) return kInf;
            double best = kInf;
            for (const auto& [finish, from] : instances) {
                best = std::min(best, finish + comm(v, i, from, p));
            }
            ready = std::max(ready, best);
        }
        return ready;
    };

    std::size_t completed = 0;
    while (completed < total) {
        // Pick the runnable head placement with the earliest start.
        std::size_t best_proc = procs;
        double best_start = kInf;
        for (std::size_t p = 0; p < procs; ++p) {
            if (next_index[p] >= table.proc_order[p].size()) continue;
            const auto& entry = table.entries[table.proc_order[p][next_index[p]]];
            const double ready = data_ready(entry.planned.task, static_cast<ProcId>(p));
            if (ready == kInf) continue;
            const double start = std::max(proc_free[p], ready);
            if (start < best_start) {
                best_start = start;
                best_proc = p;
            }
        }
        if (best_proc == procs) {
            throw std::invalid_argument(
                "simulate: schedule deadlocked (head placements wait on tasks queued behind "
                "them)");
        }
        const std::size_t entry_id = table.proc_order[best_proc][next_index[best_proc]];
        const auto& entry = table.entries[entry_id];
        const double dur = duration(entry);
        const double finish = best_start + dur;
        result.finish_times[entry.global_index] = finish;
        result.proc_busy[best_proc] += dur;
        proc_free[best_proc] = finish;
        done[static_cast<std::size_t>(entry.planned.task)].push_back(
            {finish, static_cast<ProcId>(best_proc)});
        ++next_index[best_proc];
        ++completed;
        result.makespan = std::max(result.makespan, finish);
    }

    // Communication accounting: which instance actually served each input of
    // each primary placement (remote edges counted once per consumer).
    const LinkModel& links = problem.machine().links();
    for (std::size_t v = 0; v < schedule.num_tasks(); ++v) {
        const Placement& consumer = schedule.primary(static_cast<TaskId>(v));
        const auto preds = csr.pred_tasks(static_cast<TaskId>(v));
        const auto pred_data = csr.pred_data(static_cast<TaskId>(v));
        for (std::size_t i = 0; i < preds.size(); ++i) {
            double best = kInf;
            ProcId best_from = consumer.proc;
            for (const auto& [finish, from] : done[static_cast<std::size_t>(preds[i])]) {
                const double avail =
                    finish + links.comm_time(pred_data[i], from, consumer.proc);
                if (avail < best) {
                    best = avail;
                    best_from = from;
                }
            }
            if (best_from != consumer.proc) {
                ++result.remote_messages;
                result.comm_volume += pred_data[i];
            }
        }
    }
    return result;
}
}  // namespace

SimResult simulate(const Schedule& schedule, const Problem& problem) {
    TSCHED_SPAN("sim/simulate");
#ifdef TSCHED_DEBUG_CHECKS
    // Reject invalid inputs up front with coded diagnostics; the simulator's
    // own structural checks only catch missing placements and deadlocks.
    analysis::run_debug_checks(schedule, problem);
#endif
    const LinkModel& links = problem.machine().links();
    const CsrAdjacency& csr = problem.dag().csr();
    return run(
        schedule, problem,
        [&](const auto& entry) {
            return problem.exec_time(entry.planned.task, entry.planned.proc);
        },
        [&](TaskId v, std::size_t pred_idx, ProcId from, ProcId to) {
            return links.comm_time(csr.pred_data(v)[pred_idx], from, to);
        });
}

SimResult simulate_noisy(const Schedule& schedule, const Problem& problem, double noise,
                         Rng& rng) {
    TSCHED_SPAN("sim/simulate_noisy");
    if (!(noise >= 0.0 && noise < 1.0)) {
        throw std::invalid_argument("simulate_noisy: noise must be in [0, 1)");
    }
    const CsrAdjacency& csr = problem.dag().csr();
    const LinkModel& links = problem.machine().links();

    // Pre-draw all factors in a fixed order so results depend only on the
    // rng seed, not on event interleaving.
    std::size_t total_placements = 0;
    for (std::size_t v = 0; v < schedule.num_tasks(); ++v) {
        total_placements += schedule.placements(static_cast<TaskId>(v)).size();
    }
    std::vector<double> dur_factor(total_placements);
    for (auto& f : dur_factor) f = rng.uniform(1.0 - noise, 1.0 + noise);
    std::vector<std::vector<double>> comm_factor(schedule.num_tasks());
    for (std::size_t v = 0; v < schedule.num_tasks(); ++v) {
        comm_factor[v].resize(csr.in_degree(static_cast<TaskId>(v)));
        for (auto& f : comm_factor[v]) f = rng.uniform(1.0 - noise, 1.0 + noise);
    }

    return run(
        schedule, problem,
        [&](const auto& entry) {
            return problem.exec_time(entry.planned.task, entry.planned.proc) *
                   dur_factor[entry.global_index];
        },
        [&](TaskId v, std::size_t pred_idx, ProcId from, ProcId to) {
            return links.comm_time(csr.pred_data(v)[pred_idx], from, to) *
                   comm_factor[static_cast<std::size_t>(v)][pred_idx];
        });
}

}  // namespace tsched::sim
