// Fault injection for static schedules: run the event simulator against a
// deterministic, seed-derivable plan of runtime faults and (optionally)
// repair the schedule on the fly.
//
// Three fault kinds:
//   ProcCrash     a processor fail-stops permanently at time t.  Work that
//                 completed before t keeps its outputs (data already shipped
//                 or checkpointed); the in-flight placement and everything
//                 still queued on the processor is lost and handed to the
//                 RepairPolicy.
//   TaskFault     a task fails its first `failures` execution attempts and
//                 then succeeds; every failed attempt occupies its processor
//                 for the task's full duration before the immediate retry
//                 (fail-at-completion detection).  The failure budget is per
//                 task and shared across duplicate instances.
//   LinkSlowdown  cross-processor transfers whose producer finishes inside
//                 [begin, end) are stretched by `factor` (src/dst of
//                 kInvalidProc match any processor).
//
// simulate_faulty is a single continuous run, not a re-simulation: when the
// simulated time reaches a crash, the in-flight placement on the dead
// processor is aborted (provably unconsumed — the simulator commits
// placements in non-decreasing start order), the surviving state is frozen,
// and the RepairPolicy's schedule replaces the remainder of the plan.  All
// repaired work is floored at the crash time, so causality holds and the
// whole run is deterministic: same inputs, bit-identical FaultReport.
#pragma once

#include <cstdint>
#include <vector>

#include "platform/problem.hpp"
#include "sched/repair.hpp"
#include "sched/schedule.hpp"
#include "sim/event_sim.hpp"
#include "util/rng.hpp"

namespace tsched::sim {

/// Processor `proc` fail-stops at time `time`.
struct ProcCrash {
    ProcId proc = kInvalidProc;
    double time = 0.0;

    friend bool operator==(const ProcCrash&, const ProcCrash&) = default;
};

/// Task `task` fails its first `failures` execution attempts, then succeeds.
struct TaskFault {
    TaskId task = kInvalidTask;
    std::size_t failures = 1;

    friend bool operator==(const TaskFault&, const TaskFault&) = default;
};

/// Remote transfers leaving a producer that finishes in [begin, end) take
/// `factor` times as long (factor >= 1); kInvalidProc matches any endpoint.
struct LinkSlowdown {
    double begin = 0.0;
    double end = 0.0;
    double factor = 1.0;
    ProcId src = kInvalidProc;
    ProcId dst = kInvalidProc;

    friend bool operator==(const LinkSlowdown&, const LinkSlowdown&) = default;
};

struct FaultPlan {
    std::vector<ProcCrash> crashes;
    std::vector<TaskFault> task_faults;
    std::vector<LinkSlowdown> slowdowns;

    [[nodiscard]] bool empty() const noexcept {
        return crashes.empty() && task_faults.empty() && slowdowns.empty();
    }
};

/// Crash the processor carrying the most busy time at `fraction` of the
/// schedule's makespan — the adversarial scenario the F-series sweeps.
[[nodiscard]] FaultPlan crash_busiest(const Schedule& schedule, double fraction);

/// One crash of a uniformly random processor at a uniformly random fraction
/// of the makespan in [min_fraction, max_fraction) — the Monte-Carlo sample.
[[nodiscard]] FaultPlan random_crash_plan(const Schedule& schedule, Rng& rng,
                                          double min_fraction, double max_fraction);

enum class FaultEventKind : std::uint8_t {
    kCrash,             ///< processor fail-stopped
    kTransientFailure,  ///< an execution attempt failed (will retry)
    kRepair,            ///< a repair policy replaced the remaining plan
    kMigration,         ///< a lost placement re-appeared on another processor
    kReexecution,       ///< aborted in-flight work was run again
};

[[nodiscard]] const char* fault_event_kind_name(FaultEventKind kind) noexcept;

struct FaultEvent {
    FaultEventKind kind = FaultEventKind::kCrash;
    double time = 0.0;
    TaskId task = kInvalidTask;
    ProcId proc = kInvalidProc;

    friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// Everything a faulty run produced.  `sim.finish_times` indexes the
/// *repaired* schedule's placements (task-major, like sim::simulate).
struct FaultReport {
    SimResult sim;                  ///< realised run of the repaired schedule
    Schedule repaired{0, 1};        ///< the plan as of the end of the run
    double static_makespan = 0.0;   ///< the input schedule's planned makespan
    double degradation = 1.0;       ///< sim.makespan / static_makespan
    std::size_t retries = 0;            ///< failed execution attempts
    std::size_t migrated_tasks = 0;     ///< tasks whose lost work moved processor
    std::size_t reexecuted_tasks = 0;   ///< tasks whose aborted work ran again
    std::size_t dropped_placements = 0; ///< planned placements repair did not re-create
    double repair_latency = 0.0;    ///< worst crash-to-first-replacement-start gap
    std::vector<FaultEvent> events; ///< faults and repairs in simulation order
};

/// Run `schedule` under `plan`, repairing each crash with `policy`.
///
/// Throws std::invalid_argument when the plan fails analysis::lint_fault_plan
/// (TS0601) or the repair policy returns a schedule that fails the validity
/// lints or loses the executed prefix (TS0602); std::runtime_error when the
/// crashes leave no live processor to repair onto.
[[nodiscard]] FaultReport simulate_faulty(const Schedule& schedule, const Problem& problem,
                                          const FaultPlan& plan, const RepairPolicy& policy);

}  // namespace tsched::sim
