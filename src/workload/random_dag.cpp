#include "workload/random_dag.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace tsched::workload {

namespace {
void check_common(std::size_t n, double work_min, double work_max, double data_min,
                  double data_max) {
    if (n == 0) throw std::invalid_argument("random dag: n must be >= 1");
    if (!(work_min > 0.0) || !(work_max >= work_min)) {
        throw std::invalid_argument("random dag: need 0 < work_min <= work_max");
    }
    if (!(data_min >= 0.0) || !(data_max >= data_min)) {
        throw std::invalid_argument("random dag: need 0 <= data_min <= data_max");
    }
}
}  // namespace

Dag layered_random(const LayeredDagParams& params, Rng& rng) {
    check_common(params.n, params.work_min, params.work_max, params.data_min, params.data_max);
    if (!(params.alpha > 0.0)) throw std::invalid_argument("layered_random: alpha must be > 0");
    if (params.max_out_degree == 0 || params.max_jump == 0) {
        throw std::invalid_argument("layered_random: max_out_degree and max_jump must be >= 1");
    }

    // Carve n tasks into levels: the mean width is alpha * sqrt(n); each
    // level's width is drawn uniformly from [1, 2 * mean_width - 1] so the
    // expected height is sqrt(n) / alpha.
    const double mean_width = std::max(1.0, params.alpha * std::sqrt(static_cast<double>(params.n)));
    std::vector<std::size_t> level_sizes;
    std::size_t assigned = 0;
    while (assigned < params.n) {
        const auto max_w = static_cast<std::int64_t>(std::max(1.0, 2.0 * mean_width - 1.0));
        auto width = static_cast<std::size_t>(rng.uniform_int(1, max_w));
        width = std::min(width, params.n - assigned);
        level_sizes.push_back(width);
        assigned += width;
    }

    Dag dag;
    std::vector<std::vector<TaskId>> levels(level_sizes.size());
    for (std::size_t l = 0; l < level_sizes.size(); ++l) {
        levels[l].reserve(level_sizes[l]);
        for (std::size_t i = 0; i < level_sizes[l]; ++i) {
            const double work = rng.uniform(params.work_min, params.work_max);
            levels[l].push_back(dag.add_task(work));
        }
    }

    auto rand_data = [&] { return rng.uniform(params.data_min, params.data_max); };

    // Forward edges: each task draws up to max_out_degree successors from the
    // next max_jump levels.
    for (std::size_t l = 0; l + 1 < levels.size(); ++l) {
        std::vector<TaskId> pool;
        for (std::size_t j = l + 1; j < std::min(levels.size(), l + 1 + params.max_jump); ++j) {
            pool.insert(pool.end(), levels[j].begin(), levels[j].end());
        }
        for (const TaskId u : levels[l]) {
            const auto want = static_cast<std::size_t>(
                rng.uniform_int(1, static_cast<std::int64_t>(params.max_out_degree)));
            const std::size_t degree = std::min(want, pool.size());
            // Partial Fisher–Yates over a scratch copy: first `degree`
            // entries become the sampled successors.
            std::vector<TaskId> scratch = pool;
            for (std::size_t i = 0; i < degree; ++i) {
                const auto j = static_cast<std::size_t>(
                    rng.uniform_int(static_cast<std::int64_t>(i),
                                    static_cast<std::int64_t>(scratch.size() - 1)));
                std::swap(scratch[i], scratch[j]);
                dag.add_edge(u, scratch[i], rand_data());
            }
        }
    }

    // Connectivity repair: every task beyond level 0 needs a predecessor so
    // the graph has no accidental extra sources.
    for (std::size_t l = 1; l < levels.size(); ++l) {
        for (const TaskId v : levels[l]) {
            if (dag.in_degree(v) > 0) continue;
            const auto& prev = levels[l - 1];
            const auto pick = static_cast<std::size_t>(
                rng.uniform_int(0, static_cast<std::int64_t>(prev.size() - 1)));
            dag.add_edge(prev[pick], v, rand_data());
        }
    }
    return dag;
}

Dag gnp_random(const GnpDagParams& params, Rng& rng) {
    check_common(params.n, params.work_min, params.work_max, params.data_min, params.data_max);
    if (!(params.edge_prob >= 0.0 && params.edge_prob <= 1.0)) {
        throw std::invalid_argument("gnp_random: edge_prob must be in [0, 1]");
    }
    Dag dag;
    for (std::size_t i = 0; i < params.n; ++i) {
        dag.add_task(rng.uniform(params.work_min, params.work_max));
    }
    for (std::size_t u = 0; u < params.n; ++u) {
        for (std::size_t v = u + 1; v < params.n; ++v) {
            if (rng.bernoulli(params.edge_prob)) {
                dag.add_edge(static_cast<TaskId>(u), static_cast<TaskId>(v),
                             rng.uniform(params.data_min, params.data_max));
            }
        }
    }
    if (params.connect_isolated) {
        for (std::size_t v = 1; v < params.n; ++v) {
            if (dag.in_degree(static_cast<TaskId>(v)) == 0) {
                const auto u = static_cast<TaskId>(
                    rng.uniform_int(0, static_cast<std::int64_t>(v - 1)));
                dag.add_edge(u, static_cast<TaskId>(v),
                             rng.uniform(params.data_min, params.data_max));
            }
        }
    }
    return dag;
}

}  // namespace tsched::workload
