#include "workload/structured.hpp"

#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

namespace tsched::workload {

namespace {
/// Check n is a power of two >= 2 and return log2(n).
std::size_t log2_exact(std::size_t n, const char* what) {
    if (n < 2 || (n & (n - 1)) != 0) {
        throw std::invalid_argument(std::string(what) + ": size must be a power of two >= 2");
    }
    std::size_t k = 0;
    while ((static_cast<std::size_t>(1) << k) < n) ++k;
    return k;
}
}  // namespace

Dag gaussian_elimination(std::size_t m) {
    if (m < 2) throw std::invalid_argument("gaussian_elimination: m must be >= 2");
    Dag dag;
    // pivot[k] and update[k][j - (k+1)] hold the TaskIds of step k.
    std::vector<TaskId> pivot(m - 1, kInvalidTask);
    std::vector<std::vector<TaskId>> update(m - 1);
    for (std::size_t k = 0; k + 1 < m; ++k) {
        pivot[k] = dag.add_task(1.0, "P" + std::to_string(k));
        update[k].reserve(m - 1 - k);
        for (std::size_t j = k + 1; j < m; ++j) {
            update[k].push_back(dag.add_task(2.0, "U" + std::to_string(k) + "," +
                                                      std::to_string(j)));
        }
    }
    for (std::size_t k = 0; k + 1 < m; ++k) {
        // Pivot feeds every update of its step.
        for (std::size_t j = k + 1; j < m; ++j) {
            dag.add_edge(pivot[k], update[k][j - (k + 1)], 1.0);
        }
        if (k + 2 < m) {
            // First update of step k feeds the next pivot; the remaining
            // updates feed the same-column updates of the next step.
            dag.add_edge(update[k][0], pivot[k + 1], 1.0);
            for (std::size_t j = k + 2; j < m; ++j) {
                dag.add_edge(update[k][j - (k + 1)], update[k + 1][j - (k + 2)], 1.0);
            }
        }
    }
    return dag;
}

Dag fft(std::size_t n_points) {
    const std::size_t k = log2_exact(n_points, "fft");
    Dag dag;
    std::vector<std::vector<TaskId>> rank(k + 1, std::vector<TaskId>(n_points));
    for (std::size_t l = 0; l <= k; ++l) {
        for (std::size_t i = 0; i < n_points; ++i) {
            rank[l][i] = dag.add_task(1.0, "F" + std::to_string(l) + "," + std::to_string(i));
        }
    }
    for (std::size_t l = 0; l < k; ++l) {
        const std::size_t mask = static_cast<std::size_t>(1) << (k - 1 - l);
        for (std::size_t i = 0; i < n_points; ++i) {
            dag.add_edge(rank[l][i], rank[l + 1][i], 1.0);
            dag.add_edge(rank[l][i ^ mask], rank[l + 1][i], 1.0);
        }
    }
    return dag;
}

Dag laplace(std::size_t g) {
    if (g == 0) throw std::invalid_argument("laplace: grid must be non-empty");
    Dag dag;
    std::vector<TaskId> cell(g * g);
    for (std::size_t i = 0; i < g; ++i) {
        for (std::size_t j = 0; j < g; ++j) {
            cell[i * g + j] =
                dag.add_task(1.0, "L" + std::to_string(i) + "," + std::to_string(j));
        }
    }
    for (std::size_t i = 0; i < g; ++i) {
        for (std::size_t j = 0; j < g; ++j) {
            if (i + 1 < g) dag.add_edge(cell[i * g + j], cell[(i + 1) * g + j], 1.0);
            if (j + 1 < g) dag.add_edge(cell[i * g + j], cell[i * g + j + 1], 1.0);
        }
    }
    return dag;
}

namespace {
/// Shared last-writer machinery for the tiled factorizations: tile (i, j) of
/// the matrix maps to the task that last wrote it; readers draw edges from
/// the last writer.
class TileTracker {
public:
    explicit TileTracker(std::size_t t) : t_(t), last_writer_(t * t, kInvalidTask) {}

    void read(Dag& dag, TaskId reader, std::size_t i, std::size_t j, double data) const {
        const TaskId w = last_writer_[i * t_ + j];
        if (w != kInvalidTask && !dag.has_edge(w, reader)) dag.add_edge(w, reader, data);
    }

    void write(TaskId writer, std::size_t i, std::size_t j) {
        last_writer_[i * t_ + j] = writer;
    }

private:
    std::size_t t_;
    std::vector<TaskId> last_writer_;
};
}  // namespace

Dag cholesky(std::size_t tiles) {
    if (tiles == 0) throw std::invalid_argument("cholesky: tiles must be >= 1");
    Dag dag;
    TileTracker tracker(tiles);
    for (std::size_t k = 0; k < tiles; ++k) {
        const TaskId potrf = dag.add_task(1.0, "POTRF" + std::to_string(k));
        tracker.read(dag, potrf, k, k, 1.0);
        tracker.write(potrf, k, k);
        for (std::size_t i = k + 1; i < tiles; ++i) {
            const TaskId trsm =
                dag.add_task(3.0, "TRSM" + std::to_string(i) + "," + std::to_string(k));
            tracker.read(dag, trsm, k, k, 1.0);
            tracker.read(dag, trsm, i, k, 1.0);
            tracker.write(trsm, i, k);
        }
        for (std::size_t i = k + 1; i < tiles; ++i) {
            const TaskId syrk =
                dag.add_task(3.0, "SYRK" + std::to_string(i) + "," + std::to_string(k));
            tracker.read(dag, syrk, i, k, 1.0);
            tracker.read(dag, syrk, i, i, 1.0);
            tracker.write(syrk, i, i);
            for (std::size_t j = k + 1; j < i; ++j) {
                const TaskId gemm = dag.add_task(6.0, "GEMM" + std::to_string(i) + "," +
                                                          std::to_string(j) + "," +
                                                          std::to_string(k));
                tracker.read(dag, gemm, i, k, 1.0);
                tracker.read(dag, gemm, j, k, 1.0);
                tracker.read(dag, gemm, i, j, 1.0);
                tracker.write(gemm, i, j);
            }
        }
    }
    return dag;
}

Dag lu(std::size_t tiles) {
    if (tiles == 0) throw std::invalid_argument("lu: tiles must be >= 1");
    Dag dag;
    TileTracker tracker(tiles);
    for (std::size_t k = 0; k < tiles; ++k) {
        const TaskId getrf = dag.add_task(2.0, "GETRF" + std::to_string(k));
        tracker.read(dag, getrf, k, k, 1.0);
        tracker.write(getrf, k, k);
        for (std::size_t j = k + 1; j < tiles; ++j) {  // row panel
            const TaskId trsm =
                dag.add_task(3.0, "TRSMR" + std::to_string(k) + "," + std::to_string(j));
            tracker.read(dag, trsm, k, k, 1.0);
            tracker.read(dag, trsm, k, j, 1.0);
            tracker.write(trsm, k, j);
        }
        for (std::size_t i = k + 1; i < tiles; ++i) {  // column panel
            const TaskId trsm =
                dag.add_task(3.0, "TRSMC" + std::to_string(i) + "," + std::to_string(k));
            tracker.read(dag, trsm, k, k, 1.0);
            tracker.read(dag, trsm, i, k, 1.0);
            tracker.write(trsm, i, k);
        }
        for (std::size_t i = k + 1; i < tiles; ++i) {
            for (std::size_t j = k + 1; j < tiles; ++j) {
                const TaskId gemm = dag.add_task(6.0, "GEMM" + std::to_string(i) + "," +
                                                          std::to_string(j) + "," +
                                                          std::to_string(k));
                tracker.read(dag, gemm, i, k, 1.0);
                tracker.read(dag, gemm, k, j, 1.0);
                tracker.read(dag, gemm, i, j, 1.0);
                tracker.write(gemm, i, j);
            }
        }
    }
    return dag;
}

Dag fork_join(std::size_t width, std::size_t stages) {
    if (width == 0 || stages == 0) {
        throw std::invalid_argument("fork_join: width and stages must be >= 1");
    }
    Dag dag;
    TaskId join = dag.add_task(1.0, "src");
    for (std::size_t s = 0; s < stages; ++s) {
        std::vector<TaskId> workers(width);
        for (std::size_t i = 0; i < width; ++i) {
            workers[i] =
                dag.add_task(1.0, "w" + std::to_string(s) + "," + std::to_string(i));
            dag.add_edge(join, workers[i], 1.0);
        }
        join = dag.add_task(1.0, "join" + std::to_string(s));
        for (const TaskId w : workers) dag.add_edge(w, join, 1.0);
    }
    return dag;
}

namespace {
Dag tree(std::size_t fanout, std::size_t depth, bool out) {
    if (fanout < 1 || depth < 1) {
        throw std::invalid_argument("tree: fanout and depth must be >= 1");
    }
    Dag dag;
    std::vector<TaskId> prev{dag.add_task(1.0, out ? "root" : "sink")};
    for (std::size_t d = 1; d < depth; ++d) {
        std::vector<TaskId> cur;
        cur.reserve(prev.size() * fanout);
        for (const TaskId parent : prev) {
            for (std::size_t c = 0; c < fanout; ++c) {
                const TaskId child = dag.add_task(1.0);
                if (out) {
                    dag.add_edge(parent, child, 1.0);
                } else {
                    dag.add_edge(child, parent, 1.0);
                }
                cur.push_back(child);
            }
        }
        prev = std::move(cur);
    }
    return dag;
}
}  // namespace

Dag out_tree(std::size_t fanout, std::size_t depth) { return tree(fanout, depth, true); }
Dag in_tree(std::size_t fanout, std::size_t depth) { return tree(fanout, depth, false); }

Dag chain(std::size_t n) {
    if (n == 0) throw std::invalid_argument("chain: n must be >= 1");
    Dag dag;
    TaskId prev = dag.add_task(1.0, "c0");
    for (std::size_t i = 1; i < n; ++i) {
        const TaskId cur = dag.add_task(1.0, "c" + std::to_string(i));
        dag.add_edge(prev, cur, 1.0);
        prev = cur;
    }
    return dag;
}

Dag diamond(std::size_t width, std::size_t layers) {
    if (width == 0 || layers == 0) {
        throw std::invalid_argument("diamond: width and layers must be >= 1");
    }
    Dag dag;
    const TaskId src = dag.add_task(1.0, "src");
    std::vector<TaskId> prev{src};
    for (std::size_t l = 0; l < layers; ++l) {
        std::vector<TaskId> cur(width);
        for (std::size_t i = 0; i < width; ++i) {
            cur[i] = dag.add_task(1.0, "d" + std::to_string(l) + "," + std::to_string(i));
            for (const TaskId p : prev) dag.add_edge(p, cur[i], 1.0);
        }
        prev = std::move(cur);
    }
    const TaskId sink = dag.add_task(1.0, "sink");
    for (const TaskId p : prev) dag.add_edge(p, sink, 1.0);
    return dag;
}

Dag independent(std::size_t n) {
    if (n == 0) throw std::invalid_argument("independent: n must be >= 1");
    Dag dag;
    for (std::size_t i = 0; i < n; ++i) dag.add_task(1.0, "t" + std::to_string(i));
    return dag;
}

Dag stencil_1d(std::size_t cells, std::size_t steps) {
    if (cells == 0 || steps == 0) {
        throw std::invalid_argument("stencil_1d: cells and steps must be >= 1");
    }
    Dag dag;
    std::vector<TaskId> prev(cells);
    for (std::size_t i = 0; i < cells; ++i) prev[i] = dag.add_task(1.0, "s0," + std::to_string(i));
    for (std::size_t t = 1; t < steps; ++t) {
        std::vector<TaskId> cur(cells);
        for (std::size_t i = 0; i < cells; ++i) {
            cur[i] = dag.add_task(1.0, "s" + std::to_string(t) + "," + std::to_string(i));
            if (i > 0) dag.add_edge(prev[i - 1], cur[i], 1.0);
            dag.add_edge(prev[i], cur[i], 1.0);
            if (i + 1 < cells) dag.add_edge(prev[i + 1], cur[i], 1.0);
        }
        prev = std::move(cur);
    }
    return dag;
}

Dag montage_like(std::size_t w) {
    if (w < 2) throw std::invalid_argument("montage_like: width must be >= 2");
    Dag dag;
    // Stage 1: projections.
    std::vector<TaskId> proj(w);
    for (std::size_t i = 0; i < w; ++i) {
        proj[i] = dag.add_task(4.0, "project" + std::to_string(i));
    }
    // Stage 2: overlap difference of adjacent projections.
    std::vector<TaskId> overlap(w - 1);
    for (std::size_t i = 0; i + 1 < w; ++i) {
        overlap[i] = dag.add_task(1.0, "diff" + std::to_string(i));
        dag.add_edge(proj[i], overlap[i], 2.0);
        dag.add_edge(proj[i + 1], overlap[i], 2.0);
    }
    // Stage 3: binary reduction of the overlaps into a model-fit task.
    std::vector<TaskId> level = overlap;
    std::size_t fit_idx = 0;
    while (level.size() > 1) {
        std::vector<TaskId> next;
        for (std::size_t i = 0; i < level.size(); i += 2) {
            if (i + 1 < level.size()) {
                const TaskId t = dag.add_task(1.0, "fit" + std::to_string(fit_idx++));
                dag.add_edge(level[i], t, 1.0);
                dag.add_edge(level[i + 1], t, 1.0);
                next.push_back(t);
            } else {
                next.push_back(level[i]);
            }
        }
        level = std::move(next);
    }
    const TaskId model = level.front();
    // Stage 4: background correction per projection.
    std::vector<TaskId> correct(w);
    for (std::size_t i = 0; i < w; ++i) {
        correct[i] = dag.add_task(2.0, "bg" + std::to_string(i));
        dag.add_edge(model, correct[i], 1.0);
        dag.add_edge(proj[i], correct[i], 2.0);
    }
    // Stage 5: final mosaic.
    const TaskId mosaic = dag.add_task(8.0, "mosaic");
    for (const TaskId c : correct) dag.add_edge(c, mosaic, 2.0);
    return dag;
}

}  // namespace tsched::workload
