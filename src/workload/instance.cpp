#include "workload/instance.hpp"

#include <cmath>
#include <stdexcept>

namespace tsched::workload {

const char* shape_name(Shape shape) noexcept {
    switch (shape) {
        case Shape::kLayered: return "layered";
        case Shape::kGnp: return "gnp";
        case Shape::kGauss: return "gauss";
        case Shape::kFft: return "fft";
        case Shape::kLaplace: return "laplace";
        case Shape::kCholesky: return "cholesky";
        case Shape::kLu: return "lu";
        case Shape::kForkJoin: return "forkjoin";
        case Shape::kOutTree: return "outtree";
        case Shape::kInTree: return "intree";
        case Shape::kChain: return "chain";
        case Shape::kDiamond: return "diamond";
        case Shape::kStencil: return "stencil";
        case Shape::kMontage: return "montage";
    }
    return "?";
}

Shape shape_from_name(const std::string& name) {
    for (const Shape s :
         {Shape::kLayered, Shape::kGnp, Shape::kGauss, Shape::kFft, Shape::kLaplace,
          Shape::kCholesky, Shape::kLu, Shape::kForkJoin, Shape::kOutTree, Shape::kInTree,
          Shape::kChain, Shape::kDiamond, Shape::kStencil, Shape::kMontage}) {
        if (name == shape_name(s)) return s;
    }
    throw std::invalid_argument("unknown shape '" + name + "'");
}

const char* net_name(Net net) noexcept {
    switch (net) {
        case Net::kUniform: return "uniform";
        case Net::kBus: return "bus";
        case Net::kRing: return "ring";
        case Net::kMesh2d: return "mesh2d";
        case Net::kHypercube: return "hypercube";
        case Net::kStar: return "star";
    }
    return "?";
}

Net net_from_name(const std::string& name) {
    for (const Net n : {Net::kUniform, Net::kBus, Net::kRing, Net::kMesh2d, Net::kHypercube,
                        Net::kStar}) {
        if (name == net_name(n)) return n;
    }
    throw std::invalid_argument("unknown net '" + name + "'");
}

Dag make_dag(const InstanceParams& params, Rng& rng) {
    switch (params.shape) {
        case Shape::kLayered: {
            LayeredDagParams p;
            p.n = params.size;
            p.alpha = params.alpha;
            p.max_out_degree = params.max_out_degree;
            return layered_random(p, rng);
        }
        case Shape::kGnp: {
            GnpDagParams p;
            p.n = params.size;
            p.edge_prob = params.edge_prob;
            return gnp_random(p, rng);
        }
        case Shape::kGauss: return gaussian_elimination(params.size);
        case Shape::kFft: return fft(params.size);
        case Shape::kLaplace: return laplace(params.size);
        case Shape::kCholesky: return cholesky(params.size);
        case Shape::kLu: return lu(params.size);
        case Shape::kForkJoin: return fork_join(params.size, 4);
        case Shape::kOutTree: return out_tree(3, params.size);
        case Shape::kInTree: return in_tree(3, params.size);
        case Shape::kChain: return chain(params.size);
        case Shape::kDiamond: return diamond(params.size, 3);
        case Shape::kStencil:
            return stencil_1d(params.size, std::max<std::size_t>(1, params.size / 2));
        case Shape::kMontage: return montage_like(params.size);
    }
    throw std::logic_error("make_dag: unhandled shape");
}

namespace {
LinkModelPtr make_links(const InstanceParams& params) {
    const std::size_t p = params.num_procs;
    switch (params.net) {
        case Net::kUniform:
            return std::make_shared<UniformLinkModel>(params.latency, params.bandwidth);
        case Net::kBus:
            return std::make_shared<BusLinkModel>(params.latency, params.bandwidth, p);
        case Net::kRing:
            return TopologyLinkModel::ring(p, params.latency, params.bandwidth);
        case Net::kMesh2d: {
            // Largest divisor <= sqrt(p) gives the squarest rows x cols split.
            std::size_t rows = 1;
            for (std::size_t r = 1; r * r <= p; ++r) {
                if (p % r == 0) rows = r;
            }
            return TopologyLinkModel::mesh2d(rows, p / rows, params.latency, params.bandwidth);
        }
        case Net::kHypercube: {
            if ((p & (p - 1)) != 0) {
                throw std::invalid_argument("hypercube network needs a power-of-two proc count");
            }
            std::size_t dims = 0;
            while ((static_cast<std::size_t>(1) << dims) < p) ++dims;
            return TopologyLinkModel::hypercube(dims, params.latency, params.bandwidth);
        }
        case Net::kStar:
            return TopologyLinkModel::star(p, params.latency, params.bandwidth);
    }
    throw std::logic_error("make_links: unhandled net");
}
}  // namespace

Problem make_instance(const InstanceParams& params, std::uint64_t seed) {
    if (params.num_procs == 0) throw std::invalid_argument("make_instance: num_procs >= 1");
    Rng rng(mix_seed(seed, 0x7a5edULL + static_cast<unsigned>(params.shape)));

    Dag dag = make_dag(params, rng);

    CostParams cost_params;
    cost_params.num_procs = params.num_procs;
    cost_params.avg_exec = params.avg_exec;
    cost_params.beta = params.beta;
    cost_params.consistent = params.consistent;
    CostMatrix costs = make_cost_matrix(dag, cost_params, rng);

    LinkModelPtr links = make_links(params);
    calibrate_ccr(dag, *links, params.num_procs, params.ccr, params.avg_exec);

    Machine machine = Machine::homogeneous(params.num_procs, std::move(links));
    return Problem(std::move(dag), std::move(machine), std::move(costs));
}

}  // namespace tsched::workload
