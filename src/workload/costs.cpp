#include "workload/costs.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace tsched::workload {

CostMatrix make_cost_matrix(const Dag& dag, const CostParams& params, Rng& rng) {
    if (params.num_procs == 0) throw std::invalid_argument("make_cost_matrix: num_procs >= 1");
    if (!(params.avg_exec > 0.0)) throw std::invalid_argument("make_cost_matrix: avg_exec > 0");
    if (!(params.beta >= 0.0 && params.beta < 2.0)) {
        throw std::invalid_argument("make_cost_matrix: beta must be in [0, 2)");
    }
    const std::size_t n = dag.num_tasks();
    const std::size_t p = params.num_procs;

    // Baselines: keep the DAG's relative work, normalise the mean to avg_exec.
    double work_sum = 0.0;
    for (std::size_t v = 0; v < n; ++v) work_sum += dag.work(static_cast<TaskId>(v));
    const double work_mean = n > 0 ? work_sum / static_cast<double>(n) : 1.0;
    const double scale = work_mean > 0.0 ? params.avg_exec / work_mean : params.avg_exec;

    std::vector<double> speeds;
    if (params.consistent) {
        speeds.resize(p);
        for (auto& s : speeds) s = rng.uniform(1.0 - params.beta / 2.0, 1.0 + params.beta / 2.0);
    }

    constexpr double kMinCost = 1e-9;
    std::vector<double> costs(n * p);
    for (std::size_t v = 0; v < n; ++v) {
        const double base = std::max(dag.work(static_cast<TaskId>(v)) * scale, kMinCost);
        for (std::size_t q = 0; q < p; ++q) {
            double c = 0.0;
            if (params.consistent) {
                c = base / speeds[q];
            } else {
                c = rng.uniform(base * (1.0 - params.beta / 2.0), base * (1.0 + params.beta / 2.0));
            }
            costs[v * p + q] = std::max(c, kMinCost);
        }
    }
    return CostMatrix(n, p, std::move(costs));
}

void calibrate_ccr(Dag& dag, const LinkModel& links, std::size_t num_procs, double ccr,
                   double avg_exec) {
    if (!(ccr >= 0.0)) throw std::invalid_argument("calibrate_ccr: ccr must be >= 0");
    if (!(avg_exec > 0.0)) throw std::invalid_argument("calibrate_ccr: avg_exec must be > 0");
    if (dag.num_edges() == 0 || num_procs < 2) return;

    // Current mean comm cost given the generator's data volumes.
    double comm_sum = 0.0;
    double data_sum = 0.0;
    for (std::size_t u = 0; u < dag.num_tasks(); ++u) {
        for (const AdjEdge& e : dag.successors(static_cast<TaskId>(u))) {
            comm_sum += links.mean_comm_time(e.data, num_procs);
            data_sum += e.data;
        }
    }
    const auto m = static_cast<double>(dag.num_edges());
    const double target_mean = ccr * avg_exec;

    // Mean comm cost is affine in the data volume for all our link models:
    // mean_comm(d) = mean_comm(0) + d * rate.  Solve for a single scale
    // factor on the data volumes; when even zero data overshoots (latency
    // floor above the target), zero the volumes.
    const double zero_comm = links.mean_comm_time(0.0, num_procs) * m;
    const double data_dependent = comm_sum - zero_comm;
    double factor = 0.0;
    if (data_dependent > 0.0 && data_sum > 0.0) {
        factor = std::max(0.0, (target_mean * m - zero_comm) / data_dependent);
    }
    for (std::size_t u = 0; u < dag.num_tasks(); ++u) {
        // Copy the successor list: set_edge_data mutates adjacency payloads
        // (never the structure), but iterate over a snapshot for clarity.
        const auto succs = dag.successors(static_cast<TaskId>(u));
        for (std::size_t i = 0; i < succs.size(); ++i) {
            const AdjEdge e = succs[i];
            dag.set_edge_data(static_cast<TaskId>(u), e.task, e.data * factor);
        }
    }
}

}  // namespace tsched::workload
