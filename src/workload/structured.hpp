// Structured application task graphs.
//
// These are the "real application" graphs of the static-scheduling
// literature: their shapes are fixed by the algorithm they model, only the
// size parameter varies.  Each generator documents its closed-form node/edge
// counts, which the tests verify.
//
// Work amounts default to the relative operation counts of the modelled
// kernels (so heavier kernels get proportionally longer tasks) and edge data
// defaults to 1 volume unit; the workload cost pipeline rescales both.
#pragma once

#include <cstddef>

#include "graph/dag.hpp"

namespace tsched::workload {

/// Gaussian elimination on an m x m matrix (Topcuoglu et al. shape).
/// Tasks: one pivot task per step k plus one update task per (k, j), j > k.
///   nodes = (m^2 + m - 2) / 2,  edges = m^2 - m - 1   (m >= 2).
/// Pivot work = 1, update work = 2 (relative op counts).
[[nodiscard]] Dag gaussian_elimination(std::size_t m);

/// Radix-2 FFT butterfly on n = 2^k points: (k+1) ranks of n tasks.
///   nodes = n * (log2(n) + 1),  edges = 2 * n * log2(n).
/// All tasks unit work.
[[nodiscard]] Dag fft(std::size_t n_points);

/// Laplace equation / Gauss-Seidel 2-D wavefront on a g x g grid:
/// task (i, j) depends on (i-1, j) and (i, j-1).
///   nodes = g^2,  edges = 2 g (g - 1).
[[nodiscard]] Dag laplace(std::size_t g);

/// Tiled Cholesky factorization with t x t tiles (POTRF/TRSM/SYRK/GEMM).
///   nodes = t (t + 1)(t + 2) / 6 ... derived; see tests for exact counts.
/// Work: POTRF 1, TRSM 3, SYRK 3, GEMM 6 (relative flops per tile).
[[nodiscard]] Dag cholesky(std::size_t tiles);

/// Tiled LU factorization (no pivoting) with t x t tiles (GETRF/TRSM/GEMM).
/// Work: GETRF 2, TRSM 3, GEMM 6.
[[nodiscard]] Dag lu(std::size_t tiles);

/// `stages` sequential fork-join sections of `width` parallel tasks:
/// source -> width tasks -> join -> width tasks -> ... -> sink.
///   nodes = stages * (width + 1) + 1,  edges = 2 * stages * width.
[[nodiscard]] Dag fork_join(std::size_t width, std::size_t stages);

/// Complete out-tree (root at top) of the given fanout and depth (depth = 1
/// is a single node).   nodes = (fanout^depth - 1) / (fanout - 1).
[[nodiscard]] Dag out_tree(std::size_t fanout, std::size_t depth);

/// Complete in-tree (reduction): the out-tree with all edges reversed.
[[nodiscard]] Dag in_tree(std::size_t fanout, std::size_t depth);

/// Linear chain of n tasks.  nodes = n, edges = n - 1.
[[nodiscard]] Dag chain(std::size_t n);

/// Diamond: 1 source, `layers` middle layers of `width` tasks (fully
/// connected between consecutive layers), 1 sink.
[[nodiscard]] Dag diamond(std::size_t width, std::size_t layers);

/// n independent tasks (no edges) — the embarrassingly parallel extreme.
[[nodiscard]] Dag independent(std::size_t n);

/// 1-D stencil iterated over time: task (t, i) depends on (t-1, i-1..i+1).
///   nodes = steps * cells.
[[nodiscard]] Dag stencil_1d(std::size_t cells, std::size_t steps);

/// Montage-style astronomy workflow skeleton: w projection tasks -> pairwise
/// overlap layer -> aggregation tree -> background correction (w tasks) ->
/// final mosaic.  Width parameter w >= 2.
[[nodiscard]] Dag montage_like(std::size_t w);

}  // namespace tsched::workload
