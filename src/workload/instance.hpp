// One-call experiment instance factory.
//
// The benchmark harness describes each experiment point as an InstanceParams
// value; make_instance deterministically expands (params, seed) into a full
// Problem: DAG structure -> execution-cost matrix (beta heterogeneity) ->
// edge-data calibration (CCR) -> machine with the chosen interconnect.
#pragma once

#include <cstdint>
#include <string>

#include "platform/problem.hpp"
#include "workload/costs.hpp"
#include "workload/random_dag.hpp"
#include "workload/structured.hpp"

namespace tsched::workload {

/// DAG family of an instance.
enum class Shape {
    kLayered,   ///< layered random (HEFT generator); `n`, `alpha`, `max_out_degree`
    kGnp,       ///< G(n,p) random; `n`, `edge_prob`
    kGauss,     ///< Gaussian elimination; `size` = matrix dimension m
    kFft,       ///< FFT butterfly; `size` = points (power of two)
    kLaplace,   ///< 2-D wavefront; `size` = grid side
    kCholesky,  ///< tiled Cholesky; `size` = tile count
    kLu,        ///< tiled LU; `size` = tile count
    kForkJoin,  ///< fork-join; `size` = width, 4 stages
    kOutTree,   ///< fanout-3 out-tree; `size` = depth
    kInTree,    ///< fanout-3 in-tree; `size` = depth
    kChain,     ///< linear chain; `size` = length
    kDiamond,   ///< diamond; `size` = width, 3 layers
    kStencil,   ///< 1-D stencil; `size` = cells, cells/2 steps
    kMontage,   ///< Montage-like workflow; `size` = width
};

[[nodiscard]] const char* shape_name(Shape shape) noexcept;
/// Inverse of shape_name; throws std::invalid_argument on unknown names.
[[nodiscard]] Shape shape_from_name(const std::string& name);

/// Interconnect family of an instance.
enum class Net { kUniform, kBus, kRing, kMesh2d, kHypercube, kStar };

[[nodiscard]] const char* net_name(Net net) noexcept;
[[nodiscard]] Net net_from_name(const std::string& name);

struct InstanceParams {
    // --- structure ---
    Shape shape = Shape::kLayered;
    std::size_t size = 100;          ///< tasks (random shapes) or size parameter (structured)
    double alpha = 1.0;              ///< layered: shape factor
    std::size_t max_out_degree = 4;  ///< layered: out-degree cap
    double edge_prob = 0.1;          ///< gnp: edge probability

    // --- platform ---
    std::size_t num_procs = 8;
    Net net = Net::kUniform;
    double latency = 0.0;    ///< per-message (uniform/bus) or per-hop (topologies)
    double bandwidth = 1.0;  ///< volume per time unit

    // --- costs ---
    double avg_exec = 20.0;  ///< mean execution cost
    double beta = 0.5;       ///< heterogeneity in [0, 2); 0 = homogeneous
    double ccr = 1.0;        ///< communication-to-computation ratio
    bool consistent = false; ///< related-machine costs instead of unrelated
};

/// Deterministically build the Problem for (params, seed).
[[nodiscard]] Problem make_instance(const InstanceParams& params, std::uint64_t seed);

/// Build just the DAG structure of (params, seed) — used by tests and by
/// callers that bind their own costs.
[[nodiscard]] Dag make_dag(const InstanceParams& params, Rng& rng);

}  // namespace tsched::workload
