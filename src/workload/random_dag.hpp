// Parameterised random task graphs.
//
// `layered_random` follows the generator of the HEFT evaluation (Topcuoglu
// et al., TPDS 2002) and its descendants (daggen, STG): the DAG is organised
// in levels whose count/width derive from the shape parameter alpha, and
// edges connect tasks to tasks in nearby later levels.
//
// `gnp_random` is the classic layerless construction: every pair (u, v) with
// u < v becomes an edge with a fixed probability — denser, less structured
// graphs that stress schedulers differently.
#pragma once

#include <cstddef>

#include "graph/dag.hpp"
#include "util/rng.hpp"

namespace tsched::workload {

struct LayeredDagParams {
    std::size_t n = 100;          ///< number of tasks (>= 1)
    double alpha = 1.0;           ///< shape: height ~ sqrt(n)/alpha, width ~ alpha*sqrt(n)
    std::size_t max_out_degree = 4;  ///< cap on successors drawn per task (>= 1)
    std::size_t max_jump = 2;     ///< edges may skip up to this many levels (>= 1)
    double work_min = 2.0;        ///< task work ~ U(work_min, work_max)
    double work_max = 38.0;       ///< (HEFT draws w̄ from U(0, 2*avg); we keep it positive)
    double data_min = 1.0;        ///< edge data ~ U(data_min, data_max) before CCR calibration
    double data_max = 10.0;
};

/// Generate a layered random DAG.  Postconditions: acyclic; every non-level-0
/// task has at least one predecessor; every non-terminal-level task at least
/// one successor (so makespan is dominated by real chains, not stragglers).
[[nodiscard]] Dag layered_random(const LayeredDagParams& params, Rng& rng);

struct GnpDagParams {
    std::size_t n = 100;     ///< number of tasks
    double edge_prob = 0.1;  ///< probability of each forward pair (u < v) becoming an edge
    double work_min = 2.0;
    double work_max = 38.0;
    double data_min = 1.0;
    double data_max = 10.0;
    bool connect_isolated = true;  ///< attach pred-less tasks (except task 0) to a random earlier task
};

/// Generate a G(n, p)-style DAG over a random topological order.
[[nodiscard]] Dag gnp_random(const GnpDagParams& params, Rng& rng);

}  // namespace tsched::workload
