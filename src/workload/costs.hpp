// Execution-cost randomization and CCR calibration.
//
// Follows the HEFT evaluation recipe:
//   * each task gets a baseline mean cost w̄(v) (here derived from the DAG's
//     abstract work, rescaled to the requested average);
//   * per-processor costs are drawn from U(w̄(v)(1 - beta/2), w̄(v)(1 + beta/2))
//     — beta is the heterogeneity factor; beta = 0 gives a homogeneous matrix;
//   * edge data volumes are rescaled so the *mean* communication cost over
//     the link model matches ccr * (mean execution cost), making CCR a
//     directly controlled experiment axis.
#pragma once

#include "graph/dag.hpp"
#include "platform/cost_matrix.hpp"
#include "platform/link_model.hpp"
#include "util/rng.hpp"

namespace tsched::workload {

struct CostParams {
    std::size_t num_procs = 8;
    double avg_exec = 20.0;  ///< target mean of all w(v, p) entries (> 0)
    double beta = 0.5;       ///< heterogeneity factor in [0, 2): spread of each row
    bool consistent = false; ///< true: processors have fixed relative speeds
                             ///< (related machines); false: fully unrelated (HEFT)
};

/// Build the execution-cost matrix for `dag`.
///
/// The task baseline w̄(v) preserves the relative work encoded in the DAG
/// (heavy kernels stay heavy) but is rescaled so the matrix-wide mean equals
/// `avg_exec`.  With `consistent`, one speed factor per processor is drawn
/// from U(1 - beta/2, 1 + beta/2) and w(v,p) = w̄(v)/speed(p); otherwise each
/// entry is drawn independently (unrelated machines, the HEFT default).
[[nodiscard]] CostMatrix make_cost_matrix(const Dag& dag, const CostParams& params, Rng& rng);

/// Rescale the DAG's edge data volumes in place so that the mean
/// communication cost over `links` equals `ccr * avg_exec` while preserving
/// the relative data sizes encoded by the generator.  Latency-dominated
/// models may not be able to reach very small targets (comm time can never
/// drop below the latency); the function clamps data at 0 in that case.
void calibrate_ccr(Dag& dag, const LinkModel& links, std::size_t num_procs, double ccr,
                   double avg_exec);

}  // namespace tsched::workload
