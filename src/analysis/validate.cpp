// Compatibility shim: the historical string-based validate() API, now backed
// by the coded diagnostics engine.  Lives in tsched_analysis (not
// tsched_sched) so the sched library keeps no dependency on the lint passes.
#include "sched/validate.hpp"

#include <sstream>

#include "analysis/schedule_lints.hpp"

namespace tsched {

std::string ValidationResult::message() const {
    std::ostringstream os;
    for (std::size_t i = 0; i < errors.size(); ++i) {
        if (i) os << '\n';
        os << errors[i];
    }
    return os.str();
}

ValidationResult validate(const Schedule& schedule, const Problem& problem, double time_eps,
                          std::size_t max_errors) {
    analysis::Diagnostics diags;
    analysis::ScheduleLintOptions options;
    options.time_eps = time_eps;
    options.quality = false;  // the legacy API reports validity violations only
    analysis::lint_schedule(schedule, problem, diags, options);

    ValidationResult result;
    for (const analysis::Diagnostic& d : diags.all()) {
        if (d.severity != analysis::Severity::kError) continue;
        ++result.total_violations;
        if (result.errors.size() < max_errors) result.errors.push_back(d.message);
    }
    result.ok = result.total_violations == 0;
    if (result.total_violations > result.errors.size()) {
        result.errors.push_back("... and " +
                                std::to_string(result.total_violations - result.errors.size()) +
                                " more violation(s)");
    }
    return result;
}

}  // namespace tsched
