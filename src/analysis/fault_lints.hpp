// Static analysis of fault plans (TS06xx).
//
// A FaultPlan is user input (bench flags, CLI, Monte-Carlo samplers), so the
// fault simulator validates it with coded diagnostics before running:
// out-of-range processor/task ids, negative or non-finite times, zero
// failure budgets, inverted slowdown windows, shrinking factors, duplicate
// crashes of one processor, and plans that kill every processor (no repair
// can survive those) all emit TS0601.  sim::simulate_faulty emits TS0602
// itself when a repair policy returns a schedule that fails the validity
// lints; the code lives in the shared registry so tsched_lint can explain
// both.
//
// This header only reads the plan's plain data — tsched_analysis does not
// link against tsched_sim.
#pragma once

#include "analysis/diagnostics.hpp"
#include "platform/problem.hpp"
#include "sim/faults.hpp"

namespace tsched::analysis {

/// Append a TS0601 diagnostic for every defect found in `plan` against
/// `problem`'s task/processor ranges.  Purely additive; callers decide
/// whether errors are fatal.
void lint_fault_plan(const sim::FaultPlan& plan, const Problem& problem, Diagnostics& diags);

}  // namespace tsched::analysis
