// Static analysis of produced schedules.
//
// The validity family (TS04xx, all errors) is the superset of what the old
// `tsched::validate()` checked — completeness, per-placement timing,
// processor exclusivity, duplicate-aware precedence — plus an
// impossible-schedule detector (makespan below the critical-path lower
// bound).  The quality family (TS05xx, warnings/info) reports findings a
// schedule can legally have but usually should not: duplicates no successor
// consumes, heavy idle fragmentation, and strong per-processor load
// imbalance.
//
// `tsched::validate()` (sched/validate.hpp) is now a thin shim over
// lint_schedule that keeps its historical string-based API.
#pragma once

#include "analysis/diagnostics.hpp"
#include "platform/problem.hpp"
#include "sched/schedule.hpp"

namespace tsched::analysis {

struct ScheduleLintOptions {
    /// Absorbs floating-point noise; constraint checks allow violations up to
    /// this amount (same semantics as the old validate()).
    double time_eps = 1e-6;
    /// Run the TS05xx quality passes as well as the TS04xx validity passes.
    bool quality = true;
    /// TS0502 fires when total idle time inside [0, makespan] exceeds this
    /// fraction of P * makespan.
    double idle_info_fraction = 0.5;
    /// TS0503 fires when max per-processor busy time exceeds this multiple of
    /// the mean busy time (only when at least two processors carry work).
    double imbalance_warn_ratio = 4.0;
};

/// Run the schedule passes; diagnostics are appended to `diags`.
void lint_schedule(const Schedule& schedule, const Problem& problem, Diagnostics& diags,
                   const ScheduleLintOptions& options = {});

/// Error-severity passes only; throws std::invalid_argument with the
/// rendered diagnostics when any error fires.  This is what the
/// TSCHED_DEBUG_CHECKS hooks in ScheduleBuilder::take() and sim::simulate()
/// call.
void run_debug_checks(const Schedule& schedule, const Problem& problem,
                      double time_eps = 1e-6);

}  // namespace tsched::analysis
