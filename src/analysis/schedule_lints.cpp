#include "analysis/schedule_lints.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace tsched::analysis {

namespace {

std::string fmt(double x) {
    std::ostringstream os;
    os << x;
    return os.str();
}

/// TS0402/TS0403/TS0404: completeness and per-placement timing.  Returns
/// false when any error fired (later passes would only cascade noise).
bool lint_timing(const Schedule& schedule, const Problem& problem, Diagnostics& diags,
                 double time_eps) {
    bool ok = true;
    for (std::size_t vi = 0; vi < problem.num_tasks(); ++vi) {
        const auto v = static_cast<TaskId>(vi);
        const auto places = schedule.placements(v);
        if (places.empty()) {
            diags.add(Code::kSchedMissingTask, SourceLoc{v, kInvalidProc, -1},
                      "task " + std::to_string(vi) + " has no placement");
            ok = false;
            continue;
        }
        for (std::size_t i = 0; i < places.size(); ++i) {
            const Placement& pl = places[i];
            const SourceLoc loc{v, pl.proc, static_cast<int>(i)};
            const double expect = problem.exec_time(v, pl.proc);
            if (std::abs(pl.duration() - expect) > time_eps) {
                diags.add(Code::kSchedDurationMismatch, loc,
                          "task " + std::to_string(vi) + " on P" + std::to_string(pl.proc) +
                              ": duration " + fmt(pl.duration()) + " != cost " + fmt(expect));
                ok = false;
            }
            if (pl.start < -time_eps) {
                diags.add(Code::kSchedNegativeStart, loc,
                          "task " + std::to_string(vi) + " starts before time 0");
                ok = false;
            }
        }
    }
    return ok;
}

/// TS0405: processor exclusivity.
void lint_exclusivity(const Schedule& schedule, const Problem& problem, Diagnostics& diags,
                      double time_eps) {
    for (std::size_t p = 0; p < problem.num_procs(); ++p) {
        const auto timeline = schedule.processor_timeline(static_cast<ProcId>(p));
        for (std::size_t i = 1; i < timeline.size(); ++i) {
            if (timeline[i].start < timeline[i - 1].finish - time_eps) {
                diags.add(
                    Code::kSchedOverlap,
                    SourceLoc{timeline[i].task, static_cast<ProcId>(p), -1},
                    "P" + std::to_string(p) + ": task " + std::to_string(timeline[i].task) +
                        " [" + fmt(timeline[i].start) + ", " + fmt(timeline[i].finish) +
                        ") overlaps task " + std::to_string(timeline[i - 1].task) + " [" +
                        fmt(timeline[i - 1].start) + ", " + fmt(timeline[i - 1].finish) + ")");
            }
        }
    }
}

/// TS0406: precedence with duplicate-aware communication.
void lint_precedence(const Schedule& schedule, const Problem& problem, Diagnostics& diags,
                     double time_eps) {
    const Dag& dag = problem.dag();
    const LinkModel& links = problem.machine().links();
    for (std::size_t vi = 0; vi < problem.num_tasks(); ++vi) {
        const auto v = static_cast<TaskId>(vi);
        const auto places = schedule.placements(v);
        for (std::size_t i = 0; i < places.size(); ++i) {
            const Placement& pl = places[i];
            for (const AdjEdge& e : dag.predecessors(v)) {
                const double avail = schedule.data_available(e.task, pl.proc, e.data, links);
                if (avail > pl.start + time_eps) {
                    diags.add(Code::kSchedPrecedence,
                              SourceLoc{v, pl.proc, static_cast<int>(i)},
                              "task " + std::to_string(vi) + " on P" + std::to_string(pl.proc) +
                                  " starts at " + fmt(pl.start) + " but data from task " +
                                  std::to_string(e.task) + " arrives at " + fmt(avail));
                }
            }
        }
    }
}

/// TS0407: a complete schedule whose placements all honour the cost matrix
/// can still claim a makespan below the communication-free critical path
/// over minimum execution costs — only by violating precedence or timing
/// somewhere.  This catches corrupted or hand-edited schedule files even
/// when the local checks are individually near their epsilon.
void lint_lower_bound(const Schedule& schedule, const Problem& problem, Diagnostics& diags,
                      double time_eps) {
    if (!problem.dag().is_acyclic()) return;  // bound undefined; TS0101 reports the cycle
    const double bound = problem.cp_lower_bound();
    const double makespan = schedule.makespan();
    if (makespan < bound - time_eps) {
        diags.add(Code::kSchedBelowLowerBound, SourceLoc{},
                  "makespan " + fmt(makespan) + " is below the critical-path lower bound " +
                      fmt(bound) + " — the schedule cannot be feasible");
    }
}

/// TS0501/TS0504: duplicates that serve no consumer, and duplicates placed
/// on a processor the task already occupies (never useful: the earlier copy
/// always provides the data at least as soon).
void lint_duplicates(const Schedule& schedule, const Problem& problem, Diagnostics& diags) {
    const Dag& dag = problem.dag();
    const LinkModel& links = problem.machine().links();
    constexpr double kInf = std::numeric_limits<double>::infinity();

    for (std::size_t vi = 0; vi < problem.num_tasks(); ++vi) {
        const auto v = static_cast<TaskId>(vi);
        const auto places = schedule.placements(v);
        if (places.size() < 2) continue;

        // consumed[i]: some successor placement reads v's output from copy i.
        std::vector<bool> consumed(places.size(), false);
        consumed[0] = true;  // the primary placement is the canonical copy
        for (const AdjEdge& out : dag.successors(v)) {
            for (const Placement& succ : schedule.placements(out.task)) {
                double best = kInf;
                std::size_t best_i = 0;
                for (std::size_t i = 0; i < places.size(); ++i) {
                    const double avail =
                        places[i].finish + links.comm_time(out.data, places[i].proc, succ.proc);
                    if (avail < best) {
                        best = avail;
                        best_i = i;
                    }
                }
                consumed[best_i] = true;
            }
        }
        for (std::size_t i = 1; i < places.size(); ++i) {
            const SourceLoc loc{v, places[i].proc, static_cast<int>(i)};
            if (!consumed[i]) {
                diags.add(Code::kSchedRedundantDuplicate, loc,
                          "duplicate of task " + std::to_string(vi) + " on P" +
                              std::to_string(places[i].proc) +
                              " is never the earliest source for any successor");
            }
            for (std::size_t j = 0; j < i; ++j) {
                if (places[j].proc == places[i].proc) {
                    diags.add(Code::kSchedSameProcDuplicate, loc,
                              "task " + std::to_string(vi) + " is placed twice on P" +
                                  std::to_string(places[i].proc));
                    break;
                }
            }
        }
    }
}

/// TS0502/TS0503: idle-gap fragmentation report and load-imbalance warning.
void lint_utilization(const Schedule& schedule, const Problem& problem, Diagnostics& diags,
                      const ScheduleLintOptions& options) {
    const double makespan = schedule.makespan();
    if (makespan <= 0.0) return;
    const std::size_t procs = problem.num_procs();

    std::vector<double> busy(procs, 0.0);
    std::size_t gaps = 0;
    double gap_time = 0.0;
    for (std::size_t p = 0; p < procs; ++p) {
        double cursor = 0.0;
        for (const Placement& pl : schedule.processor_timeline(static_cast<ProcId>(p))) {
            if (pl.start > cursor) {
                ++gaps;
                gap_time += pl.start - cursor;
            }
            cursor = std::max(cursor, pl.finish);
            busy[p] += pl.duration();
        }
    }

    const double capacity = makespan * static_cast<double>(procs);
    const double idle = capacity - std::min(capacity, [&] {
        double total = 0.0;
        for (const double b : busy) total += b;
        return total;
    }());
    if (idle > options.idle_info_fraction * capacity) {
        diags.add(Code::kSchedIdleFragmentation, SourceLoc{},
                  "processors are idle " +
                      std::to_string(static_cast<int>(100.0 * idle / capacity)) +
                      "% of the makespan (" + std::to_string(gaps) +
                      " interior gap(s) totalling " + fmt(gap_time) + ")");
    }

    std::size_t loaded = 0;
    double busy_sum = 0.0;
    double busy_max = 0.0;
    ProcId busiest = 0;
    for (std::size_t p = 0; p < procs; ++p) {
        if (busy[p] > 0.0) ++loaded;
        busy_sum += busy[p];
        if (busy[p] > busy_max) {
            busy_max = busy[p];
            busiest = static_cast<ProcId>(p);
        }
    }
    if (loaded >= 2) {
        const double mean = busy_sum / static_cast<double>(procs);
        if (mean > 0.0 && busy_max > options.imbalance_warn_ratio * mean) {
            diags.add(Code::kSchedLoadImbalance, SourceLoc{kInvalidTask, busiest, -1},
                      "P" + std::to_string(busiest) + " carries " + fmt(busy_max) +
                          " busy time vs. a mean of " + fmt(mean) + " per processor");
        }
    }
}

}  // namespace

void lint_schedule(const Schedule& schedule, const Problem& problem, Diagnostics& diags,
                   const ScheduleLintOptions& options) {
    if (schedule.num_tasks() != problem.num_tasks() ||
        schedule.num_procs() != problem.num_procs()) {
        diags.add(Code::kSchedDimMismatch, SourceLoc{},
                  "schedule dimensions (" + std::to_string(schedule.num_tasks()) + " tasks, " +
                      std::to_string(schedule.num_procs()) +
                      " procs) do not match problem dimensions (" +
                      std::to_string(problem.num_tasks()) + ", " +
                      std::to_string(problem.num_procs()) + ")");
        return;
    }

    // Timing errors cascade into exclusivity/precedence noise; stop early,
    // exactly like the historical validate().
    if (!lint_timing(schedule, problem, diags, options.time_eps)) return;

    lint_exclusivity(schedule, problem, diags, options.time_eps);
    lint_precedence(schedule, problem, diags, options.time_eps);
    lint_lower_bound(schedule, problem, diags, options.time_eps);

    if (options.quality) {
        lint_duplicates(schedule, problem, diags);
        lint_utilization(schedule, problem, diags, options);
    }
}

void run_debug_checks(const Schedule& schedule, const Problem& problem, double time_eps) {
    Diagnostics diags;
    ScheduleLintOptions options;
    options.time_eps = time_eps;
    options.quality = false;
    lint_schedule(schedule, problem, diags, options);
    if (diags.has_errors()) {
        throw std::invalid_argument("tsched debug checks failed:\n" + render_text(diags, 16));
    }
}

}  // namespace tsched::analysis
