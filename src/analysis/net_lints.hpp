// Static analysis of network serving configuration (TS08xx).
//
// A ServerConfig is operator input (tsched_served flags), and some knob
// combinations are legal to construct but wrong to run: an unbounded
// per-connection queue turns off the read-backpressure discipline entirely
// (TS0801), a frame cap smaller than a minimal schedule response makes the
// server unable to answer anything (TS0802), a zero fair-dispatch budget
// never decodes a request (TS0803), a negative flush timeout reads like a
// bound but closes sessions instantly on drain (TS0804), and connection
// queues that dwarf the engine's admission gate mean almost everything a
// client can pipeline gets shed (TS0805).  tsched_served prints these on
// stderr before binding; tests pin every trigger.
//
// Like serve_lints.hpp, this header reads plain config data only —
// tsched_analysis includes net/server.hpp but does not link tsched_net.
#pragma once

#include "analysis/diagnostics.hpp"
#include "net/server.hpp"

namespace tsched::analysis {

/// Append a TS08xx diagnostic for every defect found in `config` (the
/// engine-level knobs inside it go through lint_serve_config separately).
/// Purely additive; callers decide whether errors are fatal.
void lint_net_config(const net::ServerConfig& config, Diagnostics& diags);

}  // namespace tsched::analysis
