// Compiler-style diagnostics for scheduling problems and schedules.
//
// Every finding the static-analysis passes emit is a Diagnostic: a stable
// coded lint (TS####), a severity, an optional source location in scheduling
// space (task id, processor id, placement index), and a human-readable
// message.  Codes are grouped by family:
//
//   TS01xx  DAG well-formedness          (problem lints)
//   TS02xx  cost-matrix sanity           (problem lints)
//   TS03xx  instance calibration         (problem lints)
//   TS04xx  schedule validity            (schedule lints; all errors)
//   TS05xx  schedule quality             (schedule lints; warnings/info)
//   TS06xx  runtime faults & repair      (fault lints; all errors)
//   TS07xx  serving overload config      (serve lints; see serve_lints.hpp)
//   TS08xx  network serving config       (net lints; see net_lints.hpp)
//
// Codes are append-only: a code, once shipped, never changes meaning, so
// tooling that filters on "TS0406" keeps working across versions.  The text
// and JSON renderers are the two supported outputs; the JSON form parses
// back losslessly (parse_json) for downstream tooling round-trips.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "graph/dag.hpp"
#include "platform/link_model.hpp"

namespace tsched::analysis {

enum class Severity : std::uint8_t { kNote = 0, kInfo = 1, kWarning = 2, kError = 3 };

[[nodiscard]] const char* severity_name(Severity severity) noexcept;
/// Inverse of severity_name; nullopt on unknown names.
[[nodiscard]] std::optional<Severity> severity_from_name(const std::string& name);

/// Stable lint codes.  The numeric value is the #### in "TS####".
enum class Code : std::uint16_t {
    // --- TS01xx: DAG well-formedness -------------------------------------
    kDagCycle = 101,           ///< the edge set contains a directed cycle
    kDagBadWork = 102,         ///< task work is negative or non-finite
    kDagZeroWork = 103,        ///< task work is exactly zero
    kDagBadEdgeData = 104,     ///< edge data volume is negative or non-finite
    kDagSelfEdge = 105,        ///< edge u -> u
    kDagDuplicateEdge = 106,   ///< edge u -> v recorded more than once
    kDagDisconnected = 107,    ///< more than one weakly connected component
    kDagIsolatedTask = 108,    ///< task with no predecessors and no successors
    kDagRedundantEdge = 109,   ///< edge implied by a longer path (transitively redundant)

    // --- TS02xx: cost-matrix sanity --------------------------------------
    kCostNonFinite = 201,      ///< w(v,p) is NaN or infinite
    kCostNonPositive = 202,    ///< w(v,p) <= 0
    kCostDegenerateRow = 203,  ///< constant row although heterogeneity was declared
    kCostBetaMismatch = 204,   ///< realized heterogeneity far from declared beta
    kCostDimMismatch = 205,    ///< matrix dimensions disagree with DAG/machine

    // --- TS03xx: instance calibration ------------------------------------
    kInstanceCcrMismatch = 301,      ///< realized CCR off the requested value
    kInstanceAvgExecMismatch = 302,  ///< realized mean execution cost off target

    // --- TS04xx: schedule validity (errors) -------------------------------
    kSchedDimMismatch = 401,     ///< schedule dimensions disagree with problem
    kSchedMissingTask = 402,     ///< task has no placement
    kSchedDurationMismatch = 403,///< placement duration != cost-matrix entry
    kSchedNegativeStart = 404,   ///< placement starts before time 0
    kSchedOverlap = 405,         ///< two placements overlap on one processor
    kSchedPrecedence = 406,      ///< placement starts before its input data arrives
    kSchedBelowLowerBound = 407, ///< makespan below the critical-path lower bound

    // --- TS05xx: schedule quality (warnings / info) -----------------------
    kSchedRedundantDuplicate = 501,  ///< duplicate placement no consumer reads
    kSchedIdleFragmentation = 502,   ///< processors mostly idle inside the makespan
    kSchedLoadImbalance = 503,       ///< busy time concentrated on few processors
    kSchedSameProcDuplicate = 504,   ///< task duplicated onto its own processor

    // --- TS06xx: runtime faults & repair ----------------------------------
    kFaultPlanInvalid = 601,   ///< fault plan references bad ids/times or is unsurvivable
    kFaultRepairInvalid = 602, ///< repair policy produced an invalid schedule

    // --- TS07xx: serving overload config ----------------------------------
    kServePendingUnreachable = 701,  ///< pending queue configured but admission unbounded
    kServePolicyNeedsQueue = 702,    ///< drop-oldest with no pending queue to drop from
    kServeDegradeUnknownAlgo = 703,  ///< degrade substitute algorithm not in the registry
    kServeBadDeadline = 704,         ///< negative or non-finite request deadline
    kServeBadDrainTimeout = 705,     ///< negative or non-finite drain timeout

    // --- TS08xx: network serving config -----------------------------------
    kNetNoBackpressure = 801,     ///< per-connection queue unbounded; backpressure disabled
    kNetFrameCapTiny = 802,       ///< frame payload cap too small for a schedule response
    kNetDispatchStarved = 803,    ///< per-tick request budget is zero; nothing ever dispatches
    kNetBadFlushTimeout = 804,    ///< negative or non-finite post-drain flush bound
    kNetQueueExceedsGate = 805,   ///< aggregate connection queues dwarf the admission gate
};

/// "TS0406"-style stable name.
[[nodiscard]] std::string code_name(Code code);
/// Inverse of code_name; nullopt for unknown strings.
[[nodiscard]] std::optional<Code> code_from_name(const std::string& name);
/// One-line description of what the code means (for docs and --explain).
[[nodiscard]] const char* code_title(Code code) noexcept;
/// The severity a pass emits this code with by default.
[[nodiscard]] Severity default_severity(Code code) noexcept;
/// Every known code, ascending (drives the README table and tests).
[[nodiscard]] std::span<const Code> all_codes() noexcept;

/// Location of a finding in scheduling space; any field may be absent.
struct SourceLoc {
    TaskId task = kInvalidTask;
    ProcId proc = kInvalidProc;
    int placement = -1;  ///< index into the task's placement list

    friend bool operator==(const SourceLoc&, const SourceLoc&) = default;
};

struct Diagnostic {
    Code code{};
    Severity severity = Severity::kError;
    SourceLoc loc;
    std::string message;

    friend bool operator==(const Diagnostic&, const Diagnostic&) = default;
};

/// Append-only collection of diagnostics with per-severity counts.
class Diagnostics {
public:
    /// Add with the code's default severity.
    Diagnostic& add(Code code, SourceLoc loc, std::string message);
    /// Add with an explicit severity override.
    Diagnostic& add(Code code, Severity severity, SourceLoc loc, std::string message);

    [[nodiscard]] const std::vector<Diagnostic>& all() const noexcept { return diags_; }
    [[nodiscard]] bool empty() const noexcept { return diags_.empty(); }
    [[nodiscard]] std::size_t size() const noexcept { return diags_.size(); }

    [[nodiscard]] std::size_t count(Severity severity) const noexcept;
    [[nodiscard]] std::size_t error_count() const noexcept { return count(Severity::kError); }
    [[nodiscard]] std::size_t warning_count() const noexcept { return count(Severity::kWarning); }
    [[nodiscard]] bool has_errors() const noexcept { return error_count() > 0; }

    void clear();

    friend bool operator==(const Diagnostics& a, const Diagnostics& b) {
        return a.diags_ == b.diags_;
    }

private:
    std::vector<Diagnostic> diags_;
    std::array<std::size_t, 4> counts_{};
};

/// One line per diagnostic —
///   "error[TS0406] task 1 on P1 starts at 4 but data from task 0 arrives at 5"
/// — followed by a "N error(s), M warning(s)" summary line.  `max_shown` = 0
/// renders everything; otherwise the first max_shown lines plus a
/// "... and K more" note.
[[nodiscard]] std::string render_text(const Diagnostics& diags, std::size_t max_shown = 0);

/// Machine-readable form:
///   {"diagnostics":[{"code":"TS0406","severity":"error","task":1,"proc":1,
///     "placement":0,"message":"..."}, ...],
///    "counts":{"error":1,"warning":0,"info":0,"note":0}}
/// Absent location fields are omitted.  Parses back via parse_json.
[[nodiscard]] std::string render_json(const Diagnostics& diags);

/// Parse the output of render_json back into a Diagnostics value (exact
/// round-trip).  Throws std::runtime_error on input this parser does not
/// understand — it supports the subset of JSON render_json emits.
[[nodiscard]] Diagnostics parse_json(const std::string& text);

}  // namespace tsched::analysis
