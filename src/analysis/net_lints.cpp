#include "analysis/net_lints.hpp"

#include <cmath>
#include <sstream>

#include "net/frame.hpp"

namespace tsched::analysis {

void lint_net_config(const net::ServerConfig& config, Diagnostics& diags) {
    if (config.per_conn_queue == 0) {
        diags.add(Code::kNetNoBackpressure, {},
                  "per_conn_queue=0 removes the per-connection bound: a pipelining client "
                  "can park unbounded replies in server memory (read backpressure never "
                  "engages)");
    }
    // The smallest useful response carries a one-task schedule: 16 bytes of
    // frame header plus a response body whose schedule payload alone is
    // 3*8 (dims) + 32 (one placement) bytes.  Anything below 256 cannot
    // answer a real request.
    constexpr std::size_t kMinUsefulFrame = 256;
    if (config.max_frame_bytes < kMinUsefulFrame) {
        std::ostringstream os;
        os << "max_frame_bytes=" << config.max_frame_bytes << " is below the " << kMinUsefulFrame
           << "-byte floor of a minimal schedule response; the server could accept requests "
              "it can never answer";
        diags.add(Code::kNetFrameCapTiny, {}, os.str());
    }
    if (config.max_requests_per_tick == 0) {
        diags.add(Code::kNetDispatchStarved, {},
                  "max_requests_per_tick=0 gives every session a zero dispatch budget; "
                  "request frames are read but never decoded");
    }
    if (config.flush_timeout_ms < 0.0 || !std::isfinite(config.flush_timeout_ms)) {
        std::ostringstream os;
        os << "flush_timeout_ms=" << config.flush_timeout_ms
           << " is not a usable bound (drain would force-close sessions immediately); use a "
              "positive value";
        diags.add(Code::kNetBadFlushTimeout, {}, os.str());
    }
    // Aggregate wire-side queueing vs the engine's admission gate: if every
    // connection can pipeline its full queue and the sum is far beyond what
    // admission will ever hold, steady-state overload sheds nearly all of
    // it.  Only meaningful when both sides are actually bounded.
    const std::size_t gate = config.engine.max_inflight + config.engine.max_pending;
    if (config.engine.max_inflight > 0 && config.max_conns > 0 && config.per_conn_queue > 0) {
        const std::size_t aggregate = config.max_conns * config.per_conn_queue;
        if (aggregate > gate * 16) {
            std::ostringstream os;
            os << "max_conns*per_conn_queue=" << aggregate << " exceeds 16x the admission gate "
               << "(max_inflight+max_pending=" << gate
               << "); under load most pipelined requests will be shed";
            diags.add(Code::kNetQueueExceedsGate, {}, os.str());
        }
    }
}

}  // namespace tsched::analysis
