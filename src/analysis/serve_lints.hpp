// Static analysis of serving overload configuration (TS07xx).
//
// A ServeConfig is user input (tsched_serve flags, bench harness knobs), and
// several knob combinations are legal to construct but nonsensical to run:
// a pending queue behind an unbounded admission gate can never fill (TS0701),
// drop-oldest shedding with no queue silently degenerates to reject-new
// (TS0702), a degrade substitute that is not in the scheduler registry fails
// every over-budget request at runtime (TS0703), and negative deadlines or
// drain timeouts read like budgets but mean "disabled" (TS0704/TS0705).
// The CLI surfaces these on stderr before a replay; tests pin the triggers.
//
// This header only reads the config's plain data — tsched_analysis includes
// the serve headers but does not link against tsched_serve (the same
// arrangement fault_lints.hpp has with tsched_sim).
#pragma once

#include "analysis/diagnostics.hpp"
#include "serve/serve_engine.hpp"

namespace tsched::analysis {

/// Append a TS07xx diagnostic for every defect found in `config` (plus the
/// caller's default request deadline, <= 0 meaning "none").  Purely
/// additive; callers decide whether errors are fatal.
void lint_serve_config(const serve::ServeConfig& config, double deadline_ms,
                       Diagnostics& diags);

}  // namespace tsched::analysis
