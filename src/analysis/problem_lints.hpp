// Static analysis of scheduler *inputs*: DAG well-formedness (TS01xx),
// cost-matrix sanity (TS02xx), and instance calibration against the
// parameters an experiment requested (TS03xx).
//
// The paper's comparisons are only fair when generated instances actually
// match their declared CCR / heterogeneity — these passes turn "the
// generator silently drifted" into a coded, testable finding.
#pragma once

#include <optional>

#include "analysis/diagnostics.hpp"
#include "platform/problem.hpp"

namespace tsched::analysis {

/// Declared instance parameters to check realized values against.  Absent
/// fields skip their check.  `tolerance` is the allowed relative deviation.
struct InstanceExpectations {
    std::optional<double> ccr;       ///< requested communication-to-computation ratio
    std::optional<double> beta;      ///< declared heterogeneity factor in [0, 2)
    std::optional<double> avg_exec;  ///< requested mean execution cost
    double tolerance = 0.25;
};

/// DAG well-formedness: cycles, bad/zero work, bad edge data, self/duplicate
/// edges, disconnected components, isolated tasks, transitively redundant
/// edges (the redundancy pass is skipped above `redundancy_task_limit`
/// tasks — it needs the transitive closure).
void lint_dag(const Dag& dag, Diagnostics& diags, std::size_t redundancy_task_limit = 2048);

/// Cost-matrix sanity: non-finite / non-positive entries, degenerate rows
/// and realized-vs-declared heterogeneity when `declared_beta` is given.
void lint_cost_matrix(const CostMatrix& costs, Diagnostics& diags,
                      std::optional<double> declared_beta = {});

/// True when the (dag, machine, costs) triple is dimensionally consistent;
/// emits TS0205 and returns false otherwise.  Callers must check this before
/// constructing a Problem (whose constructor throws on mismatch).
bool check_dimensions(const Dag& dag, const Machine& machine, const CostMatrix& costs,
                      Diagnostics& diags);

/// Calibration only (TS03xx): realized CCR vs. requested (TS0301, an
/// *error* — a miscalibrated instance invalidates the experiment) and
/// realized mean execution cost vs. requested (TS0302, warning).
void lint_calibration(const Problem& problem, Diagnostics& diags,
                      const InstanceExpectations& expect);

/// All input passes: lint_dag + lint_cost_matrix + lint_calibration.
void lint_problem(const Problem& problem, Diagnostics& diags,
                  const InstanceExpectations& expect = {});

/// Estimate the heterogeneity factor realized by a cost matrix, assuming the
/// HEFT recipe w(v,p) ~ U(m(1-beta/2), m(1+beta/2)): averages the bias-
/// corrected per-row range (max-min)/mean * (P+1)/(P-1).  Returns 0 for
/// single-processor or empty matrices.
[[nodiscard]] double estimate_beta(const CostMatrix& costs);

}  // namespace tsched::analysis
