#include "analysis/fault_lints.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

namespace tsched::analysis {

namespace {

std::string num(double v) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%g", v);
    return buf;
}

}  // namespace

void lint_fault_plan(const sim::FaultPlan& plan, const Problem& problem, Diagnostics& diags) {
    const auto procs = static_cast<std::int64_t>(problem.num_procs());
    const auto tasks = static_cast<std::int64_t>(problem.num_tasks());

    std::vector<bool> crashed(problem.num_procs(), false);
    for (const sim::ProcCrash& c : plan.crashes) {
        if (c.proc < 0 || c.proc >= procs) {
            diags.add(Code::kFaultPlanInvalid, SourceLoc{kInvalidTask, c.proc, -1},
                      "crash of processor " + std::to_string(c.proc) + " out of range [0, " +
                          std::to_string(procs) + ")");
            continue;
        }
        if (!(c.time >= 0.0) || !std::isfinite(c.time)) {
            diags.add(Code::kFaultPlanInvalid, SourceLoc{kInvalidTask, c.proc, -1},
                      "crash of P" + std::to_string(c.proc) + " at invalid time " +
                          num(c.time));
        }
        if (crashed[static_cast<std::size_t>(c.proc)]) {
            diags.add(Code::kFaultPlanInvalid, SourceLoc{kInvalidTask, c.proc, -1},
                      "P" + std::to_string(c.proc) + " crashes more than once");
        }
        crashed[static_cast<std::size_t>(c.proc)] = true;
    }
    if (!plan.crashes.empty() &&
        static_cast<std::size_t>(std::count(crashed.begin(), crashed.end(), true)) ==
            problem.num_procs()) {
        diags.add(Code::kFaultPlanInvalid, SourceLoc{},
                  "plan crashes every processor; no repair can survive it");
    }

    for (const sim::TaskFault& f : plan.task_faults) {
        if (f.task < 0 || f.task >= tasks) {
            diags.add(Code::kFaultPlanInvalid, SourceLoc{f.task, kInvalidProc, -1},
                      "transient fault on task " + std::to_string(f.task) +
                          " out of range [0, " + std::to_string(tasks) + ")");
        }
        if (f.failures == 0) {
            diags.add(Code::kFaultPlanInvalid, SourceLoc{f.task, kInvalidProc, -1},
                      "transient fault on task " + std::to_string(f.task) +
                          " with a zero failure budget (no effect)");
        }
    }

    for (const sim::LinkSlowdown& s : plan.slowdowns) {
        if (!(s.begin >= 0.0) || !std::isfinite(s.begin) || !std::isfinite(s.end) ||
            s.end < s.begin) {
            diags.add(Code::kFaultPlanInvalid, SourceLoc{},
                      "link slowdown window [" + num(s.begin) + ", " + num(s.end) +
                          ") is invalid");
        }
        if (!(s.factor >= 1.0) || !std::isfinite(s.factor)) {
            diags.add(Code::kFaultPlanInvalid, SourceLoc{},
                      "link slowdown factor " + num(s.factor) +
                          " must be finite and >= 1");
        }
        for (const ProcId endpoint : {s.src, s.dst}) {
            if (endpoint != kInvalidProc && (endpoint < 0 || endpoint >= procs)) {
                diags.add(Code::kFaultPlanInvalid, SourceLoc{kInvalidTask, endpoint, -1},
                          "link slowdown endpoint P" + std::to_string(endpoint) +
                              " out of range [0, " + std::to_string(procs) + ")");
            }
        }
    }
}

}  // namespace tsched::analysis
