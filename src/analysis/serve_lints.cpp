#include "analysis/serve_lints.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "core/registry.hpp"

namespace tsched::analysis {

void lint_serve_config(const serve::ServeConfig& config, double deadline_ms,
                       Diagnostics& diags) {
    if (config.max_inflight == 0 && config.max_pending > 0) {
        std::ostringstream os;
        os << "max_pending=" << config.max_pending
           << " is unreachable: max_inflight=0 admits every request immediately, so the "
              "pending queue can never fill";
        diags.add(Code::kServePendingUnreachable, {}, os.str());
    }
    if (config.max_inflight > 0 && config.shed_policy == serve::ShedPolicy::kDropOldest &&
        config.max_pending == 0) {
        diags.add(Code::kServePolicyNeedsQueue, {},
                  "shed_policy=drop-oldest with max_pending=0 has nothing to drop and "
                  "degenerates to reject-new");
    }
    if (config.shed_policy == serve::ShedPolicy::kDegrade) {
        // make_scheduler (not scheduler_names) is the authority: it also
        // accepts ablation variants such as "heft-median".
        try {
            (void)make_scheduler(config.degrade_algo);
        } catch (const std::invalid_argument&) {
            std::ostringstream os;
            os << "degrade_algo='" << config.degrade_algo
               << "' is not a registered scheduler; every over-budget request would fail";
            diags.add(Code::kServeDegradeUnknownAlgo, {}, os.str());
        }
    }
    if (deadline_ms < 0.0 || !std::isfinite(deadline_ms)) {
        std::ostringstream os;
        os << "deadline_ms=" << deadline_ms
           << " is not a usable budget (it means 'no deadline'); use a positive value or 0";
        diags.add(Code::kServeBadDeadline, {}, os.str());
    }
    if (config.drain_timeout_ms < 0.0 || !std::isfinite(config.drain_timeout_ms)) {
        std::ostringstream os;
        os << "drain_timeout_ms=" << config.drain_timeout_ms
           << " is not a usable bound (it means 'wait forever'); use a positive value or 0";
        diags.add(Code::kServeBadDrainTimeout, {}, os.str());
    }
}

}  // namespace tsched::analysis
