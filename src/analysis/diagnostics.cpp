#include "analysis/diagnostics.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace tsched::analysis {

namespace {

struct CodeInfo {
    Code code;
    Severity severity;
    const char* title;
};

// Registry of every shipped code.  Append-only; keep ascending by value.
constexpr CodeInfo kCodes[] = {
    {Code::kDagCycle, Severity::kError, "directed cycle in the task graph"},
    {Code::kDagBadWork, Severity::kError, "task work is negative or non-finite"},
    {Code::kDagZeroWork, Severity::kWarning, "task work is zero"},
    {Code::kDagBadEdgeData, Severity::kError, "edge data volume is negative or non-finite"},
    {Code::kDagSelfEdge, Severity::kError, "self-edge"},
    {Code::kDagDuplicateEdge, Severity::kError, "duplicate edge"},
    {Code::kDagDisconnected, Severity::kWarning, "graph is not weakly connected"},
    {Code::kDagIsolatedTask, Severity::kWarning, "task has no edges at all"},
    {Code::kDagRedundantEdge, Severity::kInfo, "edge is transitively redundant"},
    {Code::kCostNonFinite, Severity::kError, "cost-matrix entry is NaN or infinite"},
    {Code::kCostNonPositive, Severity::kError, "cost-matrix entry is not positive"},
    {Code::kCostDegenerateRow, Severity::kWarning,
     "constant cost row despite declared heterogeneity"},
    {Code::kCostBetaMismatch, Severity::kWarning,
     "realized heterogeneity far from declared beta"},
    {Code::kCostDimMismatch, Severity::kError, "cost-matrix dimensions mismatch"},
    {Code::kInstanceCcrMismatch, Severity::kError, "realized CCR off the requested value"},
    {Code::kInstanceAvgExecMismatch, Severity::kWarning,
     "realized mean execution cost off the requested value"},
    {Code::kSchedDimMismatch, Severity::kError, "schedule dimensions mismatch the problem"},
    {Code::kSchedMissingTask, Severity::kError, "task has no placement"},
    {Code::kSchedDurationMismatch, Severity::kError,
     "placement duration differs from the cost matrix"},
    {Code::kSchedNegativeStart, Severity::kError, "placement starts before time 0"},
    {Code::kSchedOverlap, Severity::kError, "placements overlap on one processor"},
    {Code::kSchedPrecedence, Severity::kError, "placement starts before its inputs arrive"},
    {Code::kSchedBelowLowerBound, Severity::kError,
     "makespan below the critical-path lower bound"},
    {Code::kSchedRedundantDuplicate, Severity::kWarning, "duplicate no successor consumes"},
    {Code::kSchedIdleFragmentation, Severity::kInfo, "processors largely idle in the makespan"},
    {Code::kSchedLoadImbalance, Severity::kWarning, "processor load strongly imbalanced"},
    {Code::kSchedSameProcDuplicate, Severity::kWarning,
     "task duplicated onto a processor it already occupies"},
    {Code::kFaultPlanInvalid, Severity::kError, "fault plan is invalid or unsurvivable"},
    {Code::kFaultRepairInvalid, Severity::kError,
     "repair policy produced an invalid schedule"},
    {Code::kServePendingUnreachable, Severity::kWarning,
     "pending queue configured but admission is unbounded"},
    {Code::kServePolicyNeedsQueue, Severity::kWarning,
     "drop-oldest shedding with no pending queue to drop from"},
    {Code::kServeDegradeUnknownAlgo, Severity::kError,
     "degrade substitute algorithm is not in the scheduler registry"},
    {Code::kServeBadDeadline, Severity::kWarning,
     "request deadline is negative or non-finite"},
    {Code::kServeBadDrainTimeout, Severity::kWarning,
     "drain timeout is negative or non-finite"},
    {Code::kNetNoBackpressure, Severity::kWarning,
     "per-connection queue unbounded; read backpressure is disabled"},
    {Code::kNetFrameCapTiny, Severity::kError,
     "frame payload cap too small to carry a schedule response"},
    {Code::kNetDispatchStarved, Severity::kError,
     "per-tick request budget is zero; no request is ever dispatched"},
    {Code::kNetBadFlushTimeout, Severity::kWarning,
     "post-drain flush timeout is negative or non-finite"},
    {Code::kNetQueueExceedsGate, Severity::kWarning,
     "aggregate connection queues far exceed the admission gate"},
};

}  // namespace

const char* severity_name(Severity severity) noexcept {
    switch (severity) {
        case Severity::kNote: return "note";
        case Severity::kInfo: return "info";
        case Severity::kWarning: return "warning";
        case Severity::kError: return "error";
    }
    return "unknown";
}

std::optional<Severity> severity_from_name(const std::string& name) {
    for (const Severity s :
         {Severity::kNote, Severity::kInfo, Severity::kWarning, Severity::kError}) {
        if (name == severity_name(s)) return s;
    }
    return std::nullopt;
}

std::string code_name(Code code) {
    char buf[8];
    std::snprintf(buf, sizeof buf, "TS%04u", static_cast<unsigned>(code));
    return buf;
}

std::optional<Code> code_from_name(const std::string& name) {
    if (name.size() != 6 || name[0] != 'T' || name[1] != 'S') return std::nullopt;
    unsigned value = 0;
    for (std::size_t i = 2; i < 6; ++i) {
        if (name[i] < '0' || name[i] > '9') return std::nullopt;
        value = value * 10 + static_cast<unsigned>(name[i] - '0');
    }
    for (const CodeInfo& ci : kCodes) {
        if (static_cast<unsigned>(ci.code) == value) return ci.code;
    }
    return std::nullopt;
}

const char* code_title(Code code) noexcept {
    for (const CodeInfo& ci : kCodes) {
        if (ci.code == code) return ci.title;
    }
    return "unknown code";
}

Severity default_severity(Code code) noexcept {
    for (const CodeInfo& ci : kCodes) {
        if (ci.code == code) return ci.severity;
    }
    return Severity::kError;
}

std::span<const Code> all_codes() noexcept {
    static const std::vector<Code> codes = [] {
        std::vector<Code> out;
        out.reserve(std::size(kCodes));
        for (const CodeInfo& ci : kCodes) out.push_back(ci.code);
        return out;
    }();
    return codes;
}

Diagnostic& Diagnostics::add(Code code, SourceLoc loc, std::string message) {
    return add(code, default_severity(code), loc, std::move(message));
}

Diagnostic& Diagnostics::add(Code code, Severity severity, SourceLoc loc, std::string message) {
    ++counts_[static_cast<std::size_t>(severity)];
    return diags_.emplace_back(Diagnostic{code, severity, loc, std::move(message)});
}

std::size_t Diagnostics::count(Severity severity) const noexcept {
    return counts_[static_cast<std::size_t>(severity)];
}

void Diagnostics::clear() {
    diags_.clear();
    counts_ = {};
}

std::string render_text(const Diagnostics& diags, std::size_t max_shown) {
    std::ostringstream os;
    const std::size_t shown =
        max_shown == 0 ? diags.size() : std::min(max_shown, diags.size());
    for (std::size_t i = 0; i < shown; ++i) {
        const Diagnostic& d = diags.all()[i];
        os << severity_name(d.severity) << '[' << code_name(d.code) << "] " << d.message
           << '\n';
    }
    if (shown < diags.size()) {
        os << "... and " << diags.size() - shown << " more\n";
    }
    os << diags.error_count() << " error(s), " << diags.warning_count() << " warning(s), "
       << diags.count(Severity::kInfo) << " info, " << diags.count(Severity::kNote)
       << " note(s)\n";
    return os.str();
}

namespace {

std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char ch : s) {
        switch (ch) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            default: out += ch;
        }
    }
    return out;
}

/// Minimal recursive-descent reader for the subset of JSON render_json
/// emits: objects, arrays, strings (with the four escapes above), and
/// integers.  Positions and messages reference the input for errors.
class JsonReader {
public:
    explicit JsonReader(const std::string& text) : text_(text) {}

    void expect(char ch) {
        skip_ws();
        if (pos_ >= text_.size() || text_[pos_] != ch) {
            fail(std::string("expected '") + ch + "'");
        }
        ++pos_;
    }

    bool try_consume(char ch) {
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == ch) {
            ++pos_;
            return true;
        }
        return false;
    }

    std::string string_value() {
        expect('"');
        std::string out;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char ch = text_[pos_++];
            if (ch == '\\') {
                if (pos_ >= text_.size()) fail("unterminated escape");
                const char esc = text_[pos_++];
                switch (esc) {
                    case '"': ch = '"'; break;
                    case '\\': ch = '\\'; break;
                    case 'n': ch = '\n'; break;
                    case 't': ch = '\t'; break;
                    default: fail("unsupported escape"); break;
                }
            }
            out += ch;
        }
        expect('"');
        return out;
    }

    long long int_value() {
        skip_ws();
        const std::size_t begin = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
        while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
        if (pos_ == begin) fail("expected integer");
        return std::stoll(text_.substr(begin, pos_ - begin));
    }

    void skip_ws() {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\n' || text_[pos_] == '\t' ||
                text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    [[noreturn]] void fail(const std::string& what) const {
        throw std::runtime_error("parse_json: " + what + " at offset " + std::to_string(pos_));
    }

private:
    const std::string& text_;
    std::size_t pos_ = 0;
};

}  // namespace

std::string render_json(const Diagnostics& diags) {
    std::ostringstream os;
    os << "{\"diagnostics\":[";
    for (std::size_t i = 0; i < diags.size(); ++i) {
        const Diagnostic& d = diags.all()[i];
        if (i) os << ',';
        os << "{\"code\":\"" << code_name(d.code) << "\",\"severity\":\""
           << severity_name(d.severity) << '"';
        if (d.loc.task != kInvalidTask) os << ",\"task\":" << d.loc.task;
        if (d.loc.proc != kInvalidProc) os << ",\"proc\":" << d.loc.proc;
        if (d.loc.placement >= 0) os << ",\"placement\":" << d.loc.placement;
        os << ",\"message\":\"" << json_escape(d.message) << "\"}";
    }
    os << "],\"counts\":{\"error\":" << diags.error_count()
       << ",\"warning\":" << diags.warning_count()
       << ",\"info\":" << diags.count(Severity::kInfo)
       << ",\"note\":" << diags.count(Severity::kNote) << "}}";
    return os.str();
}

Diagnostics parse_json(const std::string& text) {
    JsonReader in(text);
    Diagnostics out;

    in.expect('{');
    if (in.string_value() != "diagnostics") in.fail("expected \"diagnostics\" key");
    in.expect(':');
    in.expect('[');
    if (!in.try_consume(']')) {
        do {
            in.expect('{');
            std::optional<Code> code;
            std::optional<Severity> severity;
            SourceLoc loc;
            std::string message;
            do {
                const std::string key = in.string_value();
                in.expect(':');
                if (key == "code") {
                    code = code_from_name(in.string_value());
                    if (!code) in.fail("unknown diagnostic code");
                } else if (key == "severity") {
                    severity = severity_from_name(in.string_value());
                    if (!severity) in.fail("unknown severity");
                } else if (key == "task") {
                    loc.task = static_cast<TaskId>(in.int_value());
                } else if (key == "proc") {
                    loc.proc = static_cast<ProcId>(in.int_value());
                } else if (key == "placement") {
                    loc.placement = static_cast<int>(in.int_value());
                } else if (key == "message") {
                    message = in.string_value();
                } else {
                    in.fail("unknown diagnostic field \"" + key + "\"");
                }
            } while (in.try_consume(','));
            in.expect('}');
            if (!code || !severity) in.fail("diagnostic missing code or severity");
            out.add(*code, *severity, loc, std::move(message));
        } while (in.try_consume(','));
        in.expect(']');
    }
    // Trailing "counts" object is redundant with the diagnostics themselves;
    // accept and skip it field by field.
    if (in.try_consume(',')) {
        if (in.string_value() != "counts") in.fail("expected \"counts\" key");
        in.expect(':');
        in.expect('{');
        if (!in.try_consume('}')) {
            do {
                (void)in.string_value();
                in.expect(':');
                (void)in.int_value();
            } while (in.try_consume(','));
            in.expect('}');
        }
    }
    in.expect('}');
    return out;
}

}  // namespace tsched::analysis
