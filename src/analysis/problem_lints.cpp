#include "analysis/problem_lints.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_set>

#include "graph/algorithms.hpp"

namespace tsched::analysis {

namespace {

std::string fmt(double x) {
    std::ostringstream os;
    os << x;
    return os.str();
}

/// Tasks that cannot be topologically ordered (they lie on or behind a
/// cycle).  Kahn's algorithm; empty result means acyclic.
std::vector<TaskId> cycle_tasks(const Dag& dag) {
    const std::size_t n = dag.num_tasks();
    std::vector<std::size_t> indegree(n);
    std::vector<TaskId> queue;
    for (std::size_t v = 0; v < n; ++v) {
        indegree[v] = dag.in_degree(static_cast<TaskId>(v));
        if (indegree[v] == 0) queue.push_back(static_cast<TaskId>(v));
    }
    std::size_t popped = 0;
    while (popped < queue.size()) {
        const TaskId u = queue[popped++];
        for (const AdjEdge& e : dag.successors(u)) {
            if (--indegree[static_cast<std::size_t>(e.task)] == 0) queue.push_back(e.task);
        }
    }
    std::vector<TaskId> stuck;
    for (std::size_t v = 0; v < n; ++v) {
        if (indegree[v] > 0) stuck.push_back(static_cast<TaskId>(v));
    }
    return stuck;
}

}  // namespace

void lint_dag(const Dag& dag, Diagnostics& diags, std::size_t redundancy_task_limit) {
    const std::size_t n = dag.num_tasks();
    if (n == 0) return;

    const std::vector<TaskId> stuck = cycle_tasks(dag);
    if (!stuck.empty()) {
        diags.add(Code::kDagCycle, SourceLoc{stuck.front(), kInvalidProc, -1},
                  "task graph contains a directed cycle (" + std::to_string(stuck.size()) +
                      " task(s) unorderable, first: task " + std::to_string(stuck.front()) +
                      ")");
    }

    for (std::size_t vi = 0; vi < n; ++vi) {
        const auto v = static_cast<TaskId>(vi);
        const double w = dag.work(v);
        if (!std::isfinite(w) || w < 0.0) {
            diags.add(Code::kDagBadWork, SourceLoc{v, kInvalidProc, -1},
                      "task " + std::to_string(vi) + " has invalid work " + fmt(w));
        } else if (w == 0.0) {
            diags.add(Code::kDagZeroWork, SourceLoc{v, kInvalidProc, -1},
                      "task " + std::to_string(vi) + " has zero work");
        }
        if (n > 1 && dag.in_degree(v) == 0 && dag.out_degree(v) == 0) {
            diags.add(Code::kDagIsolatedTask, SourceLoc{v, kInvalidProc, -1},
                      "task " + std::to_string(vi) + " has no predecessors and no successors");
        }
        std::unordered_set<TaskId> seen;
        for (const AdjEdge& e : dag.successors(v)) {
            const std::string edge = "edge " + std::to_string(vi) + " -> " +
                                     std::to_string(e.task);
            if (!std::isfinite(e.data) || e.data < 0.0) {
                diags.add(Code::kDagBadEdgeData, SourceLoc{v, kInvalidProc, -1},
                          edge + " has invalid data volume " + fmt(e.data));
            }
            if (e.task == v) {
                diags.add(Code::kDagSelfEdge, SourceLoc{v, kInvalidProc, -1},
                          edge + " is a self-edge");
            } else if (!seen.insert(e.task).second) {
                diags.add(Code::kDagDuplicateEdge, SourceLoc{v, kInvalidProc, -1},
                          edge + " is recorded more than once");
            }
        }
    }

    if (const std::size_t components = weakly_connected_components(dag); components > 1) {
        diags.add(Code::kDagDisconnected, SourceLoc{},
                  "task graph has " + std::to_string(components) +
                      " weakly connected components");
    }

    // Transitively redundant edges: u -> v with a longer path u ->* v.  Only
    // meaningful (and only safe to compute) on acyclic graphs.
    if (stuck.empty() && n <= redundancy_task_limit) {
        const std::vector<bool> closure = transitive_closure(dag);
        for (std::size_t ui = 0; ui < n; ++ui) {
            const auto u = static_cast<TaskId>(ui);
            for (const AdjEdge& e : dag.successors(u)) {
                if (e.task == u) continue;
                bool redundant = false;
                for (const AdjEdge& mid : dag.successors(u)) {
                    if (mid.task == e.task || mid.task == u) continue;
                    if (closure[static_cast<std::size_t>(mid.task) * n +
                                static_cast<std::size_t>(e.task)]) {
                        redundant = true;
                        break;
                    }
                }
                if (redundant) {
                    diags.add(Code::kDagRedundantEdge, SourceLoc{u, kInvalidProc, -1},
                              "edge " + std::to_string(ui) + " -> " + std::to_string(e.task) +
                                  " is implied by a longer path");
                }
            }
        }
    }
}

double estimate_beta(const CostMatrix& costs) {
    const std::size_t n = costs.num_tasks();
    const std::size_t p = costs.num_procs();
    if (n == 0 || p < 2) return 0.0;
    // For k iid draws from U(m(1-b/2), m(1+b/2)) the expected range is
    // b*m*(k-1)/(k+1); invert per row and average.
    double sum = 0.0;
    std::size_t rows = 0;
    for (std::size_t vi = 0; vi < n; ++vi) {
        const auto v = static_cast<TaskId>(vi);
        const double mean = costs.mean(v);
        if (!(mean > 0.0) || !std::isfinite(mean)) continue;
        sum += (costs.max(v) - costs.min(v)) / mean * (static_cast<double>(p) + 1.0) /
               (static_cast<double>(p) - 1.0);
        ++rows;
    }
    return rows ? sum / static_cast<double>(rows) : 0.0;
}

void lint_cost_matrix(const CostMatrix& costs, Diagnostics& diags,
                      std::optional<double> declared_beta) {
    const std::size_t n = costs.num_tasks();
    const std::size_t p = costs.num_procs();
    std::size_t degenerate_rows = 0;
    for (std::size_t vi = 0; vi < n; ++vi) {
        const auto v = static_cast<TaskId>(vi);
        for (std::size_t pi = 0; pi < p; ++pi) {
            const double c = costs(v, static_cast<ProcId>(pi));
            const SourceLoc loc{v, static_cast<ProcId>(pi), -1};
            if (!std::isfinite(c)) {
                diags.add(Code::kCostNonFinite, loc,
                          "w(" + std::to_string(vi) + ", P" + std::to_string(pi) +
                              ") = " + fmt(c) + " is not finite");
            } else if (c <= 0.0) {
                diags.add(Code::kCostNonPositive, loc,
                          "w(" + std::to_string(vi) + ", P" + std::to_string(pi) +
                              ") = " + fmt(c) + " is not positive");
            }
        }
        if (p > 1 && declared_beta && *declared_beta > 0.0 && costs.stddev(v) == 0.0) {
            ++degenerate_rows;
            if (degenerate_rows <= 4) {
                diags.add(Code::kCostDegenerateRow, SourceLoc{v, kInvalidProc, -1},
                          "task " + std::to_string(vi) +
                              " has identical cost on every processor although beta = " +
                              fmt(*declared_beta));
            }
        }
    }
    if (degenerate_rows > 4) {
        diags.add(Code::kCostDegenerateRow, SourceLoc{},
                  std::to_string(degenerate_rows - 4) + " further degenerate cost row(s)");
    }

    if (declared_beta && p > 1 && n > 0) {
        const double realized = estimate_beta(costs);
        const double declared = *declared_beta;
        // The range estimator is noisy on few tasks/processors; use a loose
        // absolute floor on top of the relative band.
        const double slack = std::max(0.25 * declared, 0.15);
        if (std::abs(realized - declared) > slack) {
            diags.add(Code::kCostBetaMismatch, SourceLoc{},
                      "realized heterogeneity ~" + fmt(realized) + " but beta = " +
                          fmt(declared) + " was declared");
        }
    }
}

bool check_dimensions(const Dag& dag, const Machine& machine, const CostMatrix& costs,
                      Diagnostics& diags) {
    bool ok = true;
    if (costs.num_tasks() != dag.num_tasks()) {
        diags.add(Code::kCostDimMismatch, SourceLoc{},
                  "cost matrix has " + std::to_string(costs.num_tasks()) + " rows but the DAG " +
                      std::to_string(dag.num_tasks()) + " tasks");
        ok = false;
    }
    if (costs.num_procs() != machine.num_procs()) {
        diags.add(Code::kCostDimMismatch, SourceLoc{},
                  "cost matrix has " + std::to_string(costs.num_procs()) +
                      " columns but the machine " + std::to_string(machine.num_procs()) +
                      " processors");
        ok = false;
    }
    return ok;
}

void lint_calibration(const Problem& problem, Diagnostics& diags,
                      const InstanceExpectations& expect) {
    if (expect.ccr && *expect.ccr > 0.0 && problem.dag().num_edges() > 0) {
        const double realized = problem.realized_ccr();
        const double requested = *expect.ccr;
        if (std::abs(realized - requested) > expect.tolerance * requested) {
            diags.add(Code::kInstanceCcrMismatch, SourceLoc{},
                      "realized CCR " + fmt(realized) + " deviates from requested " +
                          fmt(requested) + " by more than " +
                          std::to_string(static_cast<int>(expect.tolerance * 100)) + "%");
        }
    }

    if (expect.avg_exec && *expect.avg_exec > 0.0 && problem.num_tasks() > 0) {
        double sum = 0.0;
        for (std::size_t v = 0; v < problem.num_tasks(); ++v) {
            sum += problem.costs().mean(static_cast<TaskId>(v));
        }
        const double realized = sum / static_cast<double>(problem.num_tasks());
        const double requested = *expect.avg_exec;
        if (std::abs(realized - requested) > expect.tolerance * requested) {
            diags.add(Code::kInstanceAvgExecMismatch, SourceLoc{},
                      "realized mean execution cost " + fmt(realized) +
                          " deviates from requested " + fmt(requested));
        }
    }
}

void lint_problem(const Problem& problem, Diagnostics& diags,
                  const InstanceExpectations& expect) {
    lint_dag(problem.dag(), diags);
    lint_cost_matrix(problem.costs(), diags, expect.beta);
    lint_calibration(problem, diags, expect);
}

}  // namespace tsched::analysis
