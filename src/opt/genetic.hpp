// Genetic-algorithm scheduler — the classic metaheuristic comparison point
// of the static-scheduling literature ("GA finds better schedules than list
// heuristics given orders of magnitude more time").
//
// Chromosome: (processor assignment, priority vector), decoded by
// opt::decode so every individual is a valid schedule.  The population is
// seeded with the HEFT solution plus random perturbations of it; evolution
// uses tournament selection, uniform assignment crossover with arithmetic
// priority blending, per-gene mutation, and one-elite survival.  Fully
// deterministic for a given seed.
#pragma once

#include <cstdint>

#include "sched/scheduler.hpp"

namespace tsched::opt {

struct GaParams {
    std::size_t population = 24;
    std::size_t generations = 40;
    double crossover_rate = 0.9;
    double mutation_rate = 0.0;  ///< 0 = auto (2 / num_tasks)
    std::uint64_t seed = 7;
};

class GaScheduler final : public Scheduler {
public:
    explicit GaScheduler(GaParams params = {});

    [[nodiscard]] std::string name() const override { return "ga"; }
    [[nodiscard]] Schedule schedule(const Problem& problem) const override;

private:
    GaParams params_;
};

}  // namespace tsched::opt
