// Schedule post-optimization by stochastic local search.
//
// Starting from any schedule (typically a list scheduler's), the search
// perturbs the processor assignment — single-task reassignments and
// two-task swaps — and re-decodes; moves are accepted greedily (hill
// climbing) or by the Metropolis criterion (simulated annealing with a
// geometric cooling schedule).  The best schedule ever seen is returned, so
// the result never regresses below the input.
//
// RefinedScheduler wraps any base scheduler with a search pass, giving the
// "heuristic + X iterations of refinement" rows of the metaheuristic
// trade-off experiment.
#pragma once

#include <cstdint>
#include <memory>

#include "sched/scheduler.hpp"

namespace tsched::opt {

struct LocalSearchParams {
    std::size_t iterations = 2000;  ///< move evaluations
    bool annealing = true;          ///< false = pure hill climbing
    double initial_temperature = 0.05;  ///< fraction of the initial makespan
    double cooling = 0.995;         ///< geometric factor per accepted move
    std::uint64_t seed = 1;
};

/// Improve `initial` for `problem`; returns the best schedule found
/// (never worse than `initial`).
[[nodiscard]] Schedule local_search(const Problem& problem, const Schedule& initial,
                                    const LocalSearchParams& params);

/// A Scheduler that runs `base` and then refines its output.
/// Name: "<base>+ls".
class RefinedScheduler final : public Scheduler {
public:
    RefinedScheduler(SchedulerPtr base, LocalSearchParams params = {});

    [[nodiscard]] std::string name() const override;
    [[nodiscard]] Schedule schedule(const Problem& problem) const override;

private:
    SchedulerPtr base_;
    LocalSearchParams params_;
};

}  // namespace tsched::opt
