#include "opt/decoder.hpp"

#include <stdexcept>

#include "sched/builder.hpp"
#include "sched/ranks.hpp"

namespace tsched::opt {

Schedule decode(const Problem& problem, std::span<const ProcId> assignment,
                std::span<const double> priority) {
    const Dag& dag = problem.dag();
    const std::size_t n = problem.num_tasks();
    if (assignment.size() != n || priority.size() != n) {
        throw std::invalid_argument("decode: chromosome size mismatch");
    }
    ScheduleBuilder builder(problem);
    std::vector<std::size_t> pending(n);
    std::vector<TaskId> ready;
    for (std::size_t v = 0; v < n; ++v) {
        pending[v] = dag.in_degree(static_cast<TaskId>(v));
        if (pending[v] == 0) ready.push_back(static_cast<TaskId>(v));
    }
    while (!ready.empty()) {
        std::size_t best = 0;
        for (std::size_t i = 1; i < ready.size(); ++i) {
            const auto a = static_cast<std::size_t>(ready[i]);
            const auto b = static_cast<std::size_t>(ready[best]);
            if (priority[a] > priority[b] ||
                (priority[a] == priority[b] && ready[i] < ready[best])) {
                best = i;
            }
        }
        const TaskId v = ready[best];
        ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(best));
        builder.place(v, assignment[static_cast<std::size_t>(v)], /*insertion=*/true);
        for (const AdjEdge& e : dag.successors(v)) {
            if (--pending[static_cast<std::size_t>(e.task)] == 0) ready.push_back(e.task);
        }
    }
    return std::move(builder).take();
}

std::vector<ProcId> extract_assignment(const Schedule& schedule) {
    std::vector<ProcId> assignment(schedule.num_tasks(), 0);
    for (std::size_t v = 0; v < schedule.num_tasks(); ++v) {
        assignment[v] = schedule.primary(static_cast<TaskId>(v)).proc;
    }
    return assignment;
}

std::vector<double> default_priority(const Problem& problem) {
    return upward_rank(problem, RankCost::kMean);
}

}  // namespace tsched::opt
