// Chromosome decoder shared by the search-based schedulers (GA, local
// search, simulated annealing).
//
// A candidate solution is (processor assignment, task priority vector); the
// decoder turns it into a concrete schedule deterministically: ready-list
// list scheduling where the highest-priority ready task is placed on its
// assigned processor at its insertion-based earliest start.  Every
// (assignment, priority) pair decodes to a *valid* schedule, which is what
// makes blind search moves safe.
#pragma once

#include <span>
#include <vector>

#include "platform/problem.hpp"
#include "sched/schedule.hpp"

namespace tsched::opt {

/// Decode (assignment, priority) into a schedule.
/// `assignment[v]` must be a valid processor id; `priority` any real vector
/// (higher = earlier among ready tasks; ties by lower TaskId).
[[nodiscard]] Schedule decode(const Problem& problem, std::span<const ProcId> assignment,
                              std::span<const double> priority);

/// The primary-placement processor of every task — the assignment a schedule
/// encodes (duplicates are dropped; search operates on duplication-free
/// solutions).
[[nodiscard]] std::vector<ProcId> extract_assignment(const Schedule& schedule);

/// Default priorities: HEFT's mean upward rank.
[[nodiscard]] std::vector<double> default_priority(const Problem& problem);

}  // namespace tsched::opt
