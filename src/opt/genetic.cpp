#include "opt/genetic.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <vector>

#include "opt/decoder.hpp"
#include "sched/heft.hpp"
#include "util/rng.hpp"

namespace tsched::opt {

namespace {
struct Individual {
    std::vector<ProcId> assignment;
    std::vector<double> priority;
    double fitness = std::numeric_limits<double>::infinity();  // makespan
};
}  // namespace

GaScheduler::GaScheduler(GaParams params) : params_(params) {
    if (params_.population < 2) throw std::invalid_argument("GaScheduler: population >= 2");
    if (!(params_.crossover_rate >= 0.0 && params_.crossover_rate <= 1.0)) {
        throw std::invalid_argument("GaScheduler: crossover_rate in [0, 1]");
    }
}

Schedule GaScheduler::schedule(const Problem& problem) const {
    const std::size_t n = problem.num_tasks();
    const auto procs = static_cast<std::int64_t>(problem.num_procs());
    Rng rng(params_.seed);
    const double mutation =
        params_.mutation_rate > 0.0
            ? params_.mutation_rate
            : std::min(0.5, 2.0 / static_cast<double>(std::max<std::size_t>(n, 1)));

    const auto base_priority = default_priority(problem);
    auto evaluate = [&](Individual& ind) {
        ind.fitness = decode(problem, ind.assignment, ind.priority).makespan();
    };

    // Seed: the HEFT solution, then perturbations of it, then random.
    std::vector<Individual> population(params_.population);
    {
        const Schedule heft = HeftScheduler().schedule(problem);
        population[0].assignment = extract_assignment(heft);
        population[0].priority = base_priority;
        evaluate(population[0]);
    }
    for (std::size_t i = 1; i < population.size(); ++i) {
        Individual& ind = population[i];
        ind.priority = base_priority;
        if (i < population.size() / 2) {
            ind.assignment = population[0].assignment;
            for (auto& p : ind.assignment) {
                if (rng.bernoulli(0.2)) p = static_cast<ProcId>(rng.uniform_int(0, procs - 1));
            }
        } else {
            ind.assignment.resize(n);
            for (auto& p : ind.assignment) {
                p = static_cast<ProcId>(rng.uniform_int(0, procs - 1));
            }
        }
        for (auto& pr : ind.priority) pr *= rng.uniform(0.9, 1.1);
        evaluate(ind);
    }

    auto best_of = [&](const std::vector<Individual>& pop) -> const Individual& {
        std::size_t best = 0;
        for (std::size_t i = 1; i < pop.size(); ++i) {
            if (pop[i].fitness < pop[best].fitness) best = i;
        }
        return pop[best];
    };
    auto tournament = [&](const std::vector<Individual>& pop) -> const Individual& {
        const auto a = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(pop.size() - 1)));
        const auto b = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(pop.size() - 1)));
        return pop[a].fitness <= pop[b].fitness ? pop[a] : pop[b];
    };

    for (std::size_t gen = 0; gen < params_.generations; ++gen) {
        std::vector<Individual> next;
        next.reserve(population.size());
        next.push_back(best_of(population));  // elitism
        while (next.size() < population.size()) {
            const Individual& mother = tournament(population);
            const Individual& father = tournament(population);
            Individual child;
            child.assignment.resize(n);
            child.priority.resize(n);
            const bool cross = rng.bernoulli(params_.crossover_rate);
            for (std::size_t v = 0; v < n; ++v) {
                if (cross) {
                    child.assignment[v] =
                        rng.bernoulli(0.5) ? mother.assignment[v] : father.assignment[v];
                    const double mix = rng.uniform();
                    child.priority[v] =
                        mix * mother.priority[v] + (1.0 - mix) * father.priority[v];
                } else {
                    child.assignment[v] = mother.assignment[v];
                    child.priority[v] = mother.priority[v];
                }
                if (rng.bernoulli(mutation)) {
                    child.assignment[v] = static_cast<ProcId>(rng.uniform_int(0, procs - 1));
                }
                if (rng.bernoulli(mutation)) {
                    child.priority[v] *= rng.uniform(0.8, 1.2);
                }
            }
            evaluate(child);
            next.push_back(std::move(child));
        }
        population = std::move(next);
    }

    const Individual& winner = best_of(population);
    return decode(problem, winner.assignment, winner.priority);
}

}  // namespace tsched::opt
