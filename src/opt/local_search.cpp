#include "opt/local_search.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>
#include <vector>

#include "opt/decoder.hpp"
#include "util/rng.hpp"

namespace tsched::opt {

Schedule local_search(const Problem& problem, const Schedule& initial,
                      const LocalSearchParams& params) {
    const std::size_t n = problem.num_tasks();
    const auto procs = static_cast<std::int64_t>(problem.num_procs());
    if (n == 0 || procs == 1) return initial;

    Rng rng(params.seed);

    std::vector<ProcId> current = extract_assignment(initial);
    std::vector<double> current_priority = default_priority(problem);
    // Re-decode the extracted assignment: it may differ slightly from the
    // input schedule (duplicates dropped, priority order normalised); keep
    // whichever is better as the incumbent.
    Schedule current_schedule = decode(problem, current, current_priority);
    double current_cost = current_schedule.makespan();

    Schedule best_schedule =
        initial.makespan() <= current_cost ? initial : current_schedule;
    double best_cost = best_schedule.makespan();

    double temperature = params.initial_temperature * current_cost;
    for (std::size_t iter = 0; iter < params.iterations; ++iter) {
        std::vector<ProcId> candidate = current;
        std::vector<double> candidate_priority = current_priority;
        const double move = rng.uniform();
        const auto v = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(n - 1)));
        if (move < 0.45) {
            // Reassign one random task to a random other processor.
            candidate[v] = static_cast<ProcId>(rng.uniform_int(0, procs - 1));
        } else if (move < 0.70 && n >= 2) {
            // Swap the processors of two random tasks.
            const auto b = static_cast<std::size_t>(
                rng.uniform_int(0, static_cast<std::int64_t>(n - 1)));
            std::swap(candidate[v], candidate[b]);
        } else {
            // Jitter one task's priority: reorders it within the ready set.
            candidate_priority[v] *= rng.uniform(0.7, 1.3);
        }

        const Schedule schedule = decode(problem, candidate, candidate_priority);
        const double cost = schedule.makespan();
        const double delta = cost - current_cost;
        bool accept = delta < 0.0;
        if (!accept && params.annealing && temperature > 1e-12) {
            accept = rng.uniform() < std::exp(-delta / temperature);
        }
        if (accept) {
            current = std::move(candidate);
            current_priority = std::move(candidate_priority);
            current_cost = cost;
            temperature *= params.cooling;
            if (cost < best_cost) {
                best_cost = cost;
                best_schedule = schedule;
            }
        }
    }
    return best_schedule;
}

RefinedScheduler::RefinedScheduler(SchedulerPtr base, LocalSearchParams params)
    : base_(std::move(base)), params_(params) {
    if (!base_) throw std::invalid_argument("RefinedScheduler: base must not be null");
}

std::string RefinedScheduler::name() const { return base_->name() + "+ls"; }

Schedule RefinedScheduler::schedule(const Problem& problem) const {
    return local_search(problem, base_->schedule(problem), params_);
}

}  // namespace tsched::opt
