// ILS — Improved List Scheduling: the library's reconstruction of the
// paper's contribution (see DESIGN.md §3 for the full rationale; the
// original ICPP 2007 text was unavailable, so this is a concrete,
// documented HEFT-style improvement matching the paper's title and
// calibration band).
//
// Three changes over HEFT, each individually toggleable for the ablation
// benches:
//
//   1. Variance-aware ranking.  rank(v) uses w̄(v) + σw(v) instead of w̄(v):
//      tasks whose cost differs wildly across processors are riskier to
//      postpone, so they rise in priority.  On a homogeneous platform σ = 0
//      and the rank reduces exactly to HEFT's rank_u (tested invariant).
//
//   2. Downstream-aware processor selection.  Greedy EFT commits v to the
//      processor that finishes *v* earliest even when that choice strands
//      v's critical descendants.  ILS precomputes an optimistic cost table
//      OCT(v, p) — the best-case length of the remaining chain from v to an
//      exit task assuming v runs on p and every descendant picks its ideal
//      processor:
//        OCT(v, p) = max over succ c of min over q of
//                      ( c(v, c | p, q) + w(c, q) + OCT(c, q) ),   exit = 0
//      and selects the processor minimising EFT(v, p) + OCT(v, p), i.e. the
//      finish time of v plus the cheapest way its critical chain can
//      continue from there.  Because the OCT bias pays off mainly on
//      communication-dominated graphs, ILS is *dual-mode*: it runs both the
//      downstream-aware pass and a plain greedy-EFT pass (which reproduces
//      classic HEFT behaviour) and returns the shorter schedule — so it is
//      never worse than its own HEFT-equivalent mode on any instance.
//
//   3. Deterministic affinity tie-breaking.  Equal scores resolve towards
//      the processor hosting the predecessor that finished last (the data
//      producer v most urgently waits for), then the lowest index.
//
// ILS-D additionally runs a DSH-style duplication pass per candidate
// processor before evaluating it: the binding remote parent is copied into
// an idle hole when that strictly lowers v's ready time.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sched/scheduler.hpp"

namespace tsched {

struct IlsConfig {
    bool variance_rank = true;   ///< add σw(v) to the rank (change 1)
    bool lookahead = true;       ///< OCT-based downstream-aware selection (change 2)
    std::size_t lookahead_k = 0; ///< processors eligible for OCT scoring
                                 ///< (top-k by EFT); 0 = all
    bool insertion = true;       ///< insertion-based slot search
    bool duplication = false;    ///< ILS-D: parent duplication pass
    std::size_t max_dups_per_task = 4;
};

class IlsScheduler final : public Scheduler {
public:
    explicit IlsScheduler(IlsConfig config = {}) : config_(config) {}

    /// "ils", "ils-d", or "ils"/"ils-d" plus ablation suffixes
    /// (-novar, -nola, -noins, -k<k>).
    [[nodiscard]] std::string name() const override;
    [[nodiscard]] Schedule schedule(const Problem& problem) const override;

    /// Decision tracing: records both passes (labelled "greedy" and "oct")
    /// and announces the winning one via TraceSink::choose_pass, so the
    /// trace explains exactly the schedule that was returned.
    [[nodiscard]] Schedule schedule_traced(const Problem& problem,
                                           trace::TraceSink* sink) const override;

    [[nodiscard]] const IlsConfig& config() const noexcept { return config_; }

    /// The ILS priority vector (exposed for tests: on homogeneous platforms
    /// it must equal HEFT's mean upward rank).
    [[nodiscard]] static std::vector<double> ils_rank(const Problem& problem,
                                                      bool variance_rank = true);

    /// The optimistic cost table used by the downstream-aware selection,
    /// row-major (task x processor); exit rows are all zero (exposed for
    /// tests and the ablation benches).
    [[nodiscard]] static std::vector<double> optimistic_cost_table(const Problem& problem);

private:
    /// Shared body behind schedule()/schedule_traced().
    [[nodiscard]] Schedule run(const Problem& problem, trace::TraceSink* sink) const;

    /// One list-scheduling pass; `use_oct` selects the downstream-aware
    /// mode (variance rank + EFT+OCT scoring) vs the greedy-EFT mode.
    [[nodiscard]] Schedule run_pass(const Problem& problem, bool use_oct,
                                    trace::TraceSink* sink) const;

    IlsConfig config_;
};

}  // namespace tsched
