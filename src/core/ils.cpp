#include "core/ils.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <optional>
#include <stdexcept>

#include "obs/obs.hpp"
#include "sched/builder.hpp"
#include "sched/ranks.hpp"
#include "trace/decision.hpp"
#include "trace/trace.hpp"

#if TSCHED_OBS_ON
#include "util/stopwatch.hpp"
#endif

namespace tsched {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kEps = 1e-12;

/// DSH-style improvement pass reused by ILS-D (kept local: the sched/
/// duplication baselines own their variant; ILS-D deliberately uses the
/// cheaper single-parent version).
///
/// Speculates directly on `trial` (the caller checkpoints and rolls back).
/// `ready` must be data_ready(v, p) on entry; the return value is
/// data_ready(v, p) on exit, so the caller never recomputes it.
double duplicate_parents(ScheduleBuilder& trial, TaskId v, ProcId p, std::size_t max_dups,
                         double ready) {
    const Problem& problem = trial.problem();
    for (std::size_t round = 0; round < max_dups; ++round) {
        if (ready <= 0.0) return ready;
        // `ready > 0` makes the binding arrival positive, so the builder's
        // extra worst-arrival-is-zero rejection can never fire here and the
        // shared query matches the inline loop this replaces exactly.
        const TaskId binding = trial.binding_remote_pred(v, p, kEps);
        if (binding == kInvalidTask) return ready;
        TSCHED_COUNT("duplication_attempts");
        const double u_ready = trial.data_ready(binding, p);
        const double u_cost = problem.exec_time(binding, p);
        const auto slot = trial.find_slot_before(p, u_ready, u_cost, ready - kEps, true);
        if (!slot) return ready;
        trial.place_duplicate_at(binding, p, *slot);
        TSCHED_COUNT("duplication_accepted");
        const double next = trial.data_ready(v, p);
        if (next >= ready - kEps) return next;
        ready = next;
    }
    return ready;
}

/// Predecessor-affinity key: finish time of the latest-finishing predecessor
/// placement hosted on p (-inf when none) — larger is better.
double affinity(const ScheduleBuilder& builder, TaskId v, ProcId p) {
    const CsrAdjacency& csr = builder.problem().dag().csr();
    double best = -kInf;
    for (const TaskId u : csr.pred_tasks(v)) {
        for (const Placement& pl : builder.partial().placements(u)) {
            if (pl.proc == p) best = std::max(best, pl.finish);
        }
    }
    return best;
}
}  // namespace

std::vector<double> IlsScheduler::ils_rank(const Problem& problem, bool variance_rank) {
    // The recurrence folds only over each task's own successor list (order
    // fixed by the CSR snapshot), so any topological processing order gives
    // bit-identical values — see sched/ranks.cpp for the same argument.
    const CsrAdjacency& csr = problem.dag().csr();
    const std::size_t n = csr.num_tasks();
    std::vector<double> rank(n, 0.0);
    // FIFO Kahn forward order (allocation kept local: ILS ranks once per
    // pass, not in an inner loop).
    std::vector<std::size_t> indeg(n);
    std::vector<TaskId> order;
    order.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        indeg[i] = csr.in_degree(static_cast<TaskId>(i));
        if (indeg[i] == 0) order.push_back(static_cast<TaskId>(i));
    }
    for (std::size_t head = 0; head < order.size(); ++head) {
        for (const TaskId s : csr.succ_tasks(order[head])) {
            if (--indeg[static_cast<std::size_t>(s)] == 0) order.push_back(s);
        }
    }
    if (order.size() != n) throw std::invalid_argument("topological_order: graph has a cycle");
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
        const TaskId v = *it;
        const auto succs = csr.succ_tasks(v);
        const auto data = csr.succ_data(v);
        double best = 0.0;
        for (std::size_t i = 0; i < succs.size(); ++i) {
            best = std::max(best, problem.mean_comm_data(data[i]) +
                                      rank[static_cast<std::size_t>(succs[i])]);
        }
        const double w = problem.costs().mean(v) +
                         (variance_rank ? problem.costs().stddev(v) : 0.0);
        rank[static_cast<std::size_t>(v)] = w + best;
    }
    return rank;
}

std::vector<double> IlsScheduler::optimistic_cost_table(const Problem& problem) {
    return tsched::optimistic_cost_table(problem);
}

std::string IlsScheduler::name() const {
    std::string n = config_.duplication ? "ils-d" : "ils";
    if (!config_.variance_rank) n += "-novar";
    if (!config_.lookahead) n += "-nola";
    if (!config_.insertion) n += "-noins";
    if (config_.lookahead && config_.lookahead_k > 0) {
        n += "-k" + std::to_string(config_.lookahead_k);
    }
    return n;
}

Schedule IlsScheduler::schedule(const Problem& problem) const { return run(problem, nullptr); }

Schedule IlsScheduler::schedule_traced(const Problem& problem, trace::TraceSink* sink) const {
    return run(problem, sink);
}

Schedule IlsScheduler::run(const Problem& problem, trace::TraceSink* sink) const {
    TSCHED_SPAN("sched/ils");
    // Greedy-EFT pass (mean upward rank, plain EFT selection): the baseline
    // mode ILS can always fall back on.
    if (sink != nullptr) sink->begin_pass("greedy");
    Schedule greedy = run_pass(problem, /*use_oct=*/false, sink);
    if (!config_.lookahead) {
        if (sink != nullptr) sink->choose_pass("greedy");
        return greedy;
    }
    // Downstream-aware pass; keep whichever schedule is shorter.  The
    // dual-mode structure makes ILS never worse than its own HEFT-equivalent
    // mode on any instance while capturing the OCT mode's wins on
    // communication-dominated graphs.
    if (sink != nullptr) sink->begin_pass("oct");
    Schedule aware = run_pass(problem, /*use_oct=*/true, sink);
    if (aware.makespan() <= greedy.makespan()) {
        TSCHED_COUNT("dual_mode_winner_oct");
        if (sink != nullptr) sink->choose_pass("oct");
        return aware;
    }
    TSCHED_COUNT("dual_mode_winner_greedy");
    if (sink != nullptr) sink->choose_pass("greedy");
    return greedy;
}

Schedule IlsScheduler::run_pass(const Problem& problem, bool use_oct,
                                trace::TraceSink* sink) const {
    const std::size_t procs = problem.num_procs();
    // The greedy pass uses HEFT's mean rank so that it reproduces classic
    // behaviour exactly; the OCT pass uses the variance-aware rank.
    const auto rank = ils_rank(problem, use_oct && config_.variance_rank);
    const auto oct = use_oct ? optimistic_cost_table(problem) : std::vector<double>{};
    std::vector<TaskId> order;
    {
        TSCHED_OBS_PHASE("sched/phase/priority_ms");
        order = order_by_decreasing(rank);
    }

    ScheduleBuilder builder(problem);
    // Scratch reused across the task loop (previously reallocated per task).
    std::vector<double> eft_of(procs, kInf);
    std::vector<double> start_of(procs, 0.0);  // earliest start behind eft_of
    std::vector<double> aff_of(procs, -kInf);  // predecessor affinity, top-k only
    std::vector<std::size_t> cand(procs);
    // EFT evaluations are tallied locally and flushed once after the loop —
    // one relaxed atomic add per (task, proc) eval was measurable at big n.
    std::size_t eft_evals = 0;
#if TSCHED_OBS_ON
    // Selection (per-proc eval + candidate choice) and placement (winner
    // re-speculation + commit) accumulate across the run into one histogram
    // sample each — the boundary-timestamp pattern HEFT uses, two clock
    // reads per task.
    double selection_ms = 0.0;
    double placement_ms = 0.0;
    const Stopwatch loop_watch;
    double boundary_ms = 0.0;
#endif
    for (const TaskId v : order) {
        // Per-processor first-level evaluation.  For ILS-D the duplication
        // pass speculates on the one builder and is rolled back after the
        // EFT is measured, so every candidate is judged with its duplicates
        // in place without cloning the schedule state per processor.
        for (std::size_t pi = 0; pi < procs; ++pi) {
            const auto p = static_cast<ProcId>(pi);
            const double w = problem.exec_time(v, p);
            double ready = builder.data_ready(v, p);
            ScheduleBuilder::Checkpoint mark = 0;
            if (config_.duplication) {
                mark = builder.checkpoint();
                ready = duplicate_parents(builder, v, p, config_.max_dups_per_task, ready);
            }
            ++eft_evals;
            start_of[pi] = builder.earliest_start(p, ready, w, config_.insertion);
            eft_of[pi] = start_of[pi] + w;
            if (config_.duplication) builder.rollback(mark);
        }
        // Candidate set: the top-k processors by plain EFT (k = all by
        // default); among them the downstream-aware score decides.
        std::iota(cand.begin(), cand.end(), 0);
        std::sort(cand.begin(), cand.end(), [&](std::size_t a, std::size_t b) {
            if (eft_of[a] != eft_of[b]) return eft_of[a] < eft_of[b];
            return a < b;
        });
        const std::size_t k =
            use_oct ? (config_.lookahead_k == 0 ? cand.size()
                                                : std::min(config_.lookahead_k, cand.size()))
                    : 1;

        // Affinity is a tiebreak over the un-speculated state; hoisted out of
        // the selection loop, which recomputed it for every comparison.
        for (std::size_t i = 0; i < k; ++i) {
            aff_of[cand[i]] = affinity(builder, v, static_cast<ProcId>(cand[i]));
        }

        trace::DecisionRecord rec;
        std::size_t best_pi = cand[0];
        double best_score = kInf;
        double best_eft = kInf;
        double best_affinity = -kInf;
        for (std::size_t i = 0; i < k; ++i) {
            const std::size_t pi = cand[i];
            const double bias = use_oct ? oct[static_cast<std::size_t>(v) * procs + pi] : 0.0;
            const double score = eft_of[pi] + bias;
            const double aff = aff_of[pi];
            const bool better =
                score < best_score - kEps ||
                (score <= best_score + kEps &&
                 (eft_of[pi] < best_eft - kEps ||
                  (eft_of[pi] <= best_eft + kEps &&
                   (aff > best_affinity + kEps ||
                    (aff >= best_affinity - kEps && pi < best_pi)))));
            if (i == 0 || better) {
                best_pi = pi;
                best_score = score;
                best_eft = eft_of[pi];
                best_affinity = aff;
            }
        }

        if (sink != nullptr) {
            // Every processor had its EFT measured; only the top-k carry an
            // OCT bias in the selection, so only those show one here.
            std::vector<bool> scored(procs, false);
            for (std::size_t i = 0; i < k; ++i) scored[cand[i]] = true;
            for (std::size_t pi = 0; pi < procs; ++pi) {
                const auto p = static_cast<ProcId>(pi);
                const double bias =
                    (use_oct && scored[pi]) ? oct[static_cast<std::size_t>(v) * procs + pi]
                                            : 0.0;
                rec.candidates.push_back({p, eft_of[pi] - problem.exec_time(v, p), eft_of[pi],
                                          bias, eft_of[pi] + bias});
            }
        }

        // Commit: re-apply the winner's duplication (deterministic, so it
        // reproduces the speculated state exactly), then place at the start
        // already computed during evaluation — data_ready and the insertion
        // scan are not recomputed.
#if TSCHED_OBS_ON
        const double select_end_ms = loop_watch.elapsed_ms();
        selection_ms += select_end_ms - boundary_ms;
#endif
        const auto best_p = static_cast<ProcId>(best_pi);
        if (config_.duplication) {
            duplicate_parents(builder, v, best_p, config_.max_dups_per_task,
                              builder.data_ready(v, best_p));
        }
        const Placement pl = builder.place_at(v, best_p, start_of[best_pi]);
#if TSCHED_OBS_ON
        boundary_ms = loop_watch.elapsed_ms();
        placement_ms += boundary_ms - select_end_ms;
#endif
        if (sink != nullptr) {
            rec.task = v;
            rec.rank = rank[static_cast<std::size_t>(v)];
            rec.chosen = static_cast<ProcId>(best_pi);
            rec.start = pl.start;
            rec.finish = pl.finish;
            rec.reason = use_oct ? "min EFT+OCT over top-k EFT candidates, ties by EFT "
                                   "then predecessor affinity"
                                 : "min EFT, ties by predecessor affinity";
            sink->record(std::move(rec));
        }
    }
    TSCHED_COUNT_ADD("eft_evaluations", eft_evals);
    static_cast<void>(eft_evals);  // traced builds only
#if TSCHED_OBS_ON
    TSCHED_OBS_RECORD("sched/phase/selection_ms", selection_ms);
    TSCHED_OBS_RECORD("sched/phase/placement_ms", placement_ms);
#endif
    return std::move(builder).take();
}

}  // namespace tsched
