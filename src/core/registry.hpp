// Scheduler registry: string name -> Scheduler instance.
//
// The single place that knows every algorithm in the library; the benchmark
// harness, examples, and tests all resolve schedulers through it so a new
// algorithm becomes available everywhere by adding one factory entry here.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "sched/scheduler.hpp"

namespace tsched {

/// Canonical names of all registered schedulers (the order used in result
/// tables: contribution first, then the list baselines, then duplication).
[[nodiscard]] std::vector<std::string> scheduler_names();

/// Names of the default comparison set used by the paper-style experiments
/// (contribution + the main heterogeneous baselines).
[[nodiscard]] std::vector<std::string> default_comparison_set();

/// Instantiate a scheduler by name (including ablation variants such as
/// "heft-median" or "ils-nola"); throws std::invalid_argument for unknown
/// names.
[[nodiscard]] SchedulerPtr make_scheduler(const std::string& name);

/// Instantiate several schedulers at once.
[[nodiscard]] std::vector<SchedulerPtr> make_schedulers(std::span<const std::string> names);

}  // namespace tsched
