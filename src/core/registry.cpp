#include "core/registry.hpp"

#include <stdexcept>

#include "core/ils.hpp"
#include "opt/genetic.hpp"
#include "opt/local_search.hpp"
#include "sched/clustering.hpp"
#include "sched/contention_aware.hpp"
#include "sched/cpop.hpp"
#include "sched/dls.hpp"
#include "sched/duplication.hpp"
#include "sched/hcpt.hpp"
#include "sched/heft.hpp"
#include "sched/list_baselines.hpp"
#include "sched/lookahead_heft.hpp"
#include "sched/optimal.hpp"
#include "sched/peft.hpp"

namespace tsched {

std::vector<std::string> scheduler_names() {
    return {
        "ils",  "ils-d",                                    // contribution
        "heft", "heft-median", "heft-worst", "heft-best",   // HEFT + rank variants
        "heft-noins", "cpop", "hcpt", "dls", "etf", "mcp", "hlfet",
        "minmin", "maxmin", "random",                       // other baselines
        "peft", "lheft", "lc", "ca-heft",                   // later/clustering/contention
        "dsh", "btdh",                                      // duplication baselines
        "ga", "heft+ls", "ils+ls",                          // search-based schedulers
    };
}

std::vector<std::string> default_comparison_set() {
    return {"ils", "ils-d", "heft", "cpop", "hcpt", "dls", "etf", "mcp"};
}

SchedulerPtr make_scheduler(const std::string& name) {
    // --- search-based wrappers: "<base>+ls" refines any base scheduler ---
    if (const auto plus = name.rfind("+ls"); plus != std::string::npos &&
                                             plus == name.size() - 3 && plus > 0) {
        return std::make_unique<opt::RefinedScheduler>(make_scheduler(name.substr(0, plus)));
    }
    if (name == "ga") return std::make_unique<opt::GaScheduler>();

    // --- contribution + ablation variants ---
    if (name.rfind("ils", 0) == 0) {
        IlsConfig config;
        std::string rest = name.substr(3);
        if (rest.rfind("-d", 0) == 0) {
            config.duplication = true;
            rest = rest.substr(2);
        }
        while (!rest.empty()) {
            if (rest.rfind("-novar", 0) == 0) {
                config.variance_rank = false;
                rest = rest.substr(6);
            } else if (rest.rfind("-nola", 0) == 0) {
                config.lookahead = false;
                rest = rest.substr(5);
            } else if (rest.rfind("-noins", 0) == 0) {
                config.insertion = false;
                rest = rest.substr(6);
            } else if (rest.rfind("-k", 0) == 0) {
                std::size_t consumed = 0;
                config.lookahead_k = std::stoul(rest.substr(2), &consumed);
                rest = rest.substr(2 + consumed);
            } else {
                throw std::invalid_argument("unknown scheduler '" + name + "'");
            }
        }
        return std::make_unique<IlsScheduler>(config);
    }

    // --- HEFT family ---
    if (name == "heft") return std::make_unique<HeftScheduler>();
    if (name == "heft-median") return std::make_unique<HeftScheduler>(RankCost::kMedian);
    if (name == "heft-worst") return std::make_unique<HeftScheduler>(RankCost::kWorst);
    if (name == "heft-best") return std::make_unique<HeftScheduler>(RankCost::kBest);
    if (name == "heft-noins") {
        return std::make_unique<HeftScheduler>(RankCost::kMean, /*insertion=*/false);
    }

    if (name == "cpop") return std::make_unique<CpopScheduler>();
    if (name == "hcpt") return std::make_unique<HcptScheduler>();
    if (name == "dls") return std::make_unique<DlsScheduler>();
    if (name == "etf") return std::make_unique<EtfScheduler>();
    if (name == "mcp") return std::make_unique<McpScheduler>();
    if (name == "hlfet") return std::make_unique<HlfetScheduler>();
    if (name == "minmin") return std::make_unique<MinMinScheduler>();
    if (name == "maxmin") return std::make_unique<MaxMinScheduler>();
    if (name == "random") return std::make_unique<RandomScheduler>();
    if (name == "dsh") return std::make_unique<DshScheduler>();
    if (name == "btdh") return std::make_unique<BtdhScheduler>();
    if (name == "peft") return std::make_unique<PeftScheduler>();
    if (name == "lheft") return std::make_unique<LookaheadHeftScheduler>();
    if (name == "lc") return std::make_unique<LinearClusteringScheduler>();
    if (name == "ca-heft") return std::make_unique<CaHeftScheduler>();
    // Exact search — resolvable by name but deliberately absent from
    // scheduler_names(): exponential, for small instances only (see E15).
    if (name == "bnb") return std::make_unique<BnbScheduler>();

    throw std::invalid_argument("unknown scheduler '" + name + "'");
}

std::vector<SchedulerPtr> make_schedulers(std::span<const std::string> names) {
    std::vector<SchedulerPtr> out;
    out.reserve(names.size());
    for (const auto& name : names) out.push_back(make_scheduler(name));
    return out;
}

}  // namespace tsched
