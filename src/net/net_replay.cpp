#include "net/net_replay.hpp"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <utility>

#include "net/client.hpp"
#include "util/fingerprint.hpp"
#include "util/stats.hpp"
#include "util/stopwatch.hpp"

namespace tsched::net {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
    return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

struct WorkerResult {
    std::vector<double> latencies;
    obs::HistogramSnapshot hist;
    std::uint64_t ok = 0;
    std::uint64_t shed = 0;
    std::uint64_t degraded = 0;
    std::uint64_t timed_out = 0;
    std::uint64_t draining = 0;
    std::uint64_t failed = 0;
    std::uint64_t cache_hits = 0;
    std::size_t sent = 0;
    std::size_t assigned = 0;
    std::size_t replies = 0;
    /// fingerprint -> fnv1a(fingerprint || payload) for responses that
    /// carried a schedule; merged across workers for the digest.
    std::unordered_map<std::uint64_t, std::uint64_t> payloads;
    bool payload_consistent = true;
};

void classify(WorkerResult& result, const WireResponse& response) {
    switch (response.outcome) {
        case serve::ServeOutcome::kOk: ++result.ok; break;
        case serve::ServeOutcome::kShed: ++result.shed; break;
        case serve::ServeOutcome::kDegraded: ++result.degraded; break;
        case serve::ServeOutcome::kTimedOut: ++result.timed_out; break;
        case serve::ServeOutcome::kDraining: ++result.draining; break;
    }
    if (response.cache_hit) ++result.cache_hits;
    if (response.has_schedule()) {
        Fnv1a hasher;
        hasher.u64(response.fingerprint);
        hasher.str(response.schedule_bytes);
        const auto [it, inserted] = result.payloads.emplace(response.fingerprint, hasher.value());
        if (!inserted && it->second != hasher.value()) result.payload_consistent = false;
    }
}

void run_worker(const std::vector<serve::TraceRequest>& trace, const NetReplayOptions& options,
                std::size_t worker, WorkerResult& result) {
    // Round-robin slice, repeated `epochs` times.
    std::vector<std::size_t> slice;
    for (std::size_t i = worker; i < trace.size(); i += options.conns) slice.push_back(i);
    result.assigned = slice.size() * options.epochs;
    if (result.assigned == 0) return;

    obs::LatencyHistogram hist;
    result.latencies.reserve(result.assigned);
    std::unordered_map<std::uint64_t, Clock::time_point> outstanding;

    ClientConfig config;
    config.host = options.host;
    config.port = options.port;
    config.client_name = options.client_name + "#" + std::to_string(worker);

    try {
        ServeClient client(config);
        std::size_t cursor = 0;
        while (result.replies + result.failed < result.assigned) {
            if (cursor < result.assigned && outstanding.size() < options.window) {
                const serve::TraceRequest& request = trace[slice[cursor % slice.size()]];
                const std::uint64_t id = client.send(request, options.deadline_ms);
                outstanding.emplace(id, Clock::now());
                ++cursor;
                ++result.sent;
                continue;
            }
            ClientReply reply = client.recv();
            if (reply.id == 0) {
                // Session-level error: the server is closing this
                // connection; everything outstanding is lost.
                result.failed += outstanding.size();
                break;
            }
            const auto it = outstanding.find(reply.id);
            if (it == outstanding.end()) continue;  // stale duplicate; ignore
            const double latency = ms_since(it->second);
            outstanding.erase(it);
            ++result.replies;
            result.latencies.push_back(latency);
            hist.record(latency);
            if (reply.ok())
                classify(result, *reply.response);
            else
                ++result.failed;
        }
    } catch (const std::exception&) {
        // Connection drop mid-run: outstanding requests are lost.
        result.failed += outstanding.size();
    }
    // Requests this worker never managed to send still count against the
    // accounting identity — a dead connection must not shrink the universe.
    result.failed += result.assigned - result.sent;
    result.hist = hist.snapshot();
}

}  // namespace

NetReplayReport replay_net(const std::vector<serve::TraceRequest>& trace,
                           const NetReplayOptions& options) {
    if (options.conns == 0) throw std::invalid_argument("replay_net: conns must be >= 1");
    if (options.window == 0) throw std::invalid_argument("replay_net: window must be >= 1");
    if (options.epochs == 0) throw std::invalid_argument("replay_net: epochs must be >= 1");

    NetReplayReport report;
    report.conns = options.conns;
    if (trace.empty()) return report;

    std::vector<WorkerResult> results(options.conns);
    const Stopwatch wall;
    {
        std::vector<std::thread> workers;
        workers.reserve(options.conns);
        for (std::size_t i = 0; i < options.conns; ++i)
            workers.emplace_back(
                [&trace, &options, i, &results] { run_worker(trace, options, i, results[i]); });
        for (auto& worker : workers) worker.join();
    }
    report.wall_ms = wall.elapsed_ms();

    std::vector<double> latencies;
    std::unordered_map<std::uint64_t, std::uint64_t> payloads;
    for (const WorkerResult& result : results) {
        report.requests += result.assigned;
        report.replies += result.replies;
        report.ok += result.ok;
        report.shed += result.shed;
        report.degraded += result.degraded;
        report.timed_out += result.timed_out;
        report.draining += result.draining;
        report.failed += result.failed;
        report.cache_hits += result.cache_hits;
        report.payload_consistent = report.payload_consistent && result.payload_consistent;
        latencies.insert(latencies.end(), result.latencies.begin(), result.latencies.end());
        report.latency_hist.merge(result.hist);
        for (const auto& [fingerprint, hash] : result.payloads) {
            const auto [it, inserted] = payloads.emplace(fingerprint, hash);
            if (!inserted && it->second != hash) report.payload_consistent = false;
        }
    }
    // XOR over distinct fingerprints: arrival order and hit counts cancel
    // out, so the digest compares across pool widths and connection counts.
    for (const auto& [fingerprint, hash] : payloads) {
        (void)fingerprint;
        report.schedule_digest ^= hash;
    }

    if (!latencies.empty()) {
        std::sort(latencies.begin(), latencies.end());
        report.latency_mean_ms = std::accumulate(latencies.begin(), latencies.end(), 0.0) /
                                 static_cast<double>(latencies.size());
        report.latency_p50_ms = quantile_sorted(latencies, 0.50);
        report.latency_p95_ms = quantile_sorted(latencies, 0.95);
        report.latency_p99_ms = quantile_sorted(latencies, 0.99);
        report.latency_p999_ms = quantile_sorted(latencies, 0.999);
        report.latency_max_ms = latencies.back();
        report.hist_p50_ms = report.latency_hist.quantile(0.50);
        report.hist_p95_ms = report.latency_hist.quantile(0.95);
        report.hist_p99_ms = report.latency_hist.quantile(0.99);
    }
    if (report.wall_ms > 0.0)
        report.qps = static_cast<double>(report.replies) / (report.wall_ms / 1e3);
    return report;
}

}  // namespace tsched::net
