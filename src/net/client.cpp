#include "net/client.hpp"

#include <sys/socket.h>

#include <cerrno>
#include <stdexcept>
#include <system_error>

namespace tsched::net {

namespace {

/// Blocking full-buffer send (client sockets stay in blocking mode).
void send_all(int fd, const char* data, std::size_t size) {
    std::size_t written = 0;
    while (written < size) {
        const ssize_t n = ::send(fd, data + written, size - written, MSG_NOSIGNAL);
        if (n > 0) {
            written += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR) continue;
        throw std::system_error(errno, std::generic_category(), "send");
    }
}

}  // namespace

ServeClient::ServeClient(const ClientConfig& config)
    : fd_(connect_tcp(config.host, config.port)), decoder_(config.max_frame_bytes) {
    WireHello hello;
    hello.client_name = config.client_name;
    const std::string frame =
        encode_frame(FrameType::kHello, encode_hello(hello), config.max_frame_bytes);
    send_all(fd_.get(), frame.data(), frame.size());

    const Frame reply = read_frame();
    if (reply.type == FrameType::kError) {
        const WireError err = decode_error(reply.payload);
        throw std::runtime_error(std::string("handshake rejected: ") +
                                 wire_error_code_name(static_cast<WireErrorCode>(err.code)) +
                                 ": " + err.message);
    }
    if (reply.type != FrameType::kHelloAck)
        throw std::runtime_error(std::string("handshake: expected hello_ack, got ") +
                                 frame_type_name(reply.type));
    ack_ = decode_hello_ack(reply.payload);
    if (ack_.codec_version != kCodecVersion)
        throw std::runtime_error("handshake: server codec version " +
                                 std::to_string(ack_.codec_version) + " != " +
                                 std::to_string(kCodecVersion));
}

std::uint64_t ServeClient::send(const serve::TraceRequest& trace, double deadline_ms,
                                const std::string& options) {
    WireRequest request;
    request.id = next_id_++;
    request.trace = trace;
    request.deadline_ms = deadline_ms;
    request.options = options;
    const std::string frame =
        encode_frame(FrameType::kRequest, encode_request(request), ack_.max_frame_bytes);
    send_all(fd_.get(), frame.data(), frame.size());
    return request.id;
}

ClientReply ServeClient::recv() {
    const Frame frame = read_frame();
    ClientReply reply;
    switch (frame.type) {
        case FrameType::kResponse:
            reply.response = decode_response(frame.payload);
            reply.id = reply.response->id;
            return reply;
        case FrameType::kError:
            reply.error = decode_error(frame.payload);
            reply.id = reply.error->request_id;
            return reply;
        default:
            throw std::runtime_error(std::string("unexpected frame type from server: ") +
                                     frame_type_name(frame.type));
    }
}

ClientReply ServeClient::call(const serve::TraceRequest& trace, double deadline_ms,
                              const std::string& options) {
    const std::uint64_t id = send(trace, deadline_ms, options);
    while (true) {
        ClientReply reply = recv();
        // Session-level errors (id 0) abort the call too: the server is
        // about to close this connection.
        if (reply.id == id || reply.id == 0) return reply;
    }
}

void ServeClient::send_raw(std::string_view bytes) {
    send_all(fd_.get(), bytes.data(), bytes.size());
}

Frame ServeClient::read_frame() {
    while (true) {
        if (auto frame = decoder_.next()) return std::move(*frame);
        if (decoder_.failed())
            throw std::runtime_error(std::string("malformed frame from server: ") +
                                     frame_error_name(decoder_.error()));
        char buf[16 * 1024];
        ssize_t n = 0;
        do {
            n = ::recv(fd_.get(), buf, sizeof buf, 0);
        } while (n < 0 && errno == EINTR);
        if (n < 0) throw std::system_error(errno, std::generic_category(), "recv");
        if (n == 0) throw std::runtime_error("connection closed by server");
        decoder_.feed(std::string_view(buf, static_cast<std::size_t>(n)));
    }
}

}  // namespace tsched::net
