// Message codec for the tsched serving protocol (DESIGN §17).
//
// Frame payloads (net/frame.hpp) carry versioned binary messages encoded
// with the same canonical conventions the PR 5 fingerprint contract pinned
// (util/fingerprint.hpp): integers are 8-byte little-endian, doubles are the
// canonicalized IEEE-754 bit pattern (-0 -> +0, every NaN -> one quiet NaN)
// little-endian, strings are u64-length-prefixed raw bytes.  Because both
// sides of the wire share the fingerprint's canonicalization, an encoded
// message is a pure function of its value — the determinism battery keeps
// golden byte vectors for fixed requests and responses, and repeated
// requests produce byte-identical response payloads across reruns and pool
// widths.
//
// Request bodies are *workload descriptors* (the `.tsr` line: algorithm +
// shape/size/procs/net/ccr/beta/seed), not materialized graphs: the server
// expands a descriptor with serve::materialize(), exactly like trace replay,
// so a request frame is ~100 bytes regardless of task count and identical
// descriptors hit one cached computation.  The body starts with a format
// byte so a future inline-problem encoding can coexist; unknown formats are
// a typed decode error, never a crash.
//
// Decoding throws CodecError (with a stable CodecStatus) on truncated,
// oversized, or trailing bytes — a reader must consume its payload exactly.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

#include "sched/schedule.hpp"
#include "serve/request.hpp"
#include "serve/request_trace.hpp"

namespace tsched::net {

/// Bump when any message layout below changes (append-only, like the
/// fingerprint version).  Carried in the Hello payload; a server refuses a
/// client speaking a different codec.
inline constexpr std::uint64_t kCodecVersion = 1;

/// Request body formats (first payload byte after the request id).
inline constexpr std::uint8_t kRequestBodyDescriptor = 1;

enum class CodecStatus : std::uint8_t {
    kOk = 0,
    kTruncated = 1,      ///< payload ended before the message did
    kTrailingBytes = 2,  ///< payload longer than the message
    kBadBodyFormat = 3,  ///< unknown request body format byte
    kBadEnum = 4,        ///< outcome/shape/net name not recognized
    kBadValue = 5,       ///< field value out of its documented range
};

[[nodiscard]] const char* codec_status_name(CodecStatus status) noexcept;

class CodecError : public std::runtime_error {
public:
    CodecError(CodecStatus status, const std::string& what)
        : std::runtime_error(what), status_(status) {}
    [[nodiscard]] CodecStatus status() const noexcept { return status_; }

private:
    CodecStatus status_;
};

// ---------------------------------------------------------------------------
// Messages.
// ---------------------------------------------------------------------------

/// Client's opening frame.  The server checks both versions and answers
/// HelloAck or a kBadHandshake error.
struct WireHello {
    std::uint64_t codec_version = kCodecVersion;
    std::string client_name;  ///< cosmetic, for server logs
};

struct WireHelloAck {
    std::uint64_t codec_version = kCodecVersion;
    std::uint64_t max_frame_bytes = 0;  ///< server's payload cap for this session
    std::string server_name;
};

/// One scheduling request.  `id` is a client-chosen correlation token echoed
/// verbatim in the response; responses on a connection may complete out of
/// order (the engine answers cache hits immediately), so the id — not
/// arrival order — pairs them up.
struct WireRequest {
    std::uint64_t id = 0;
    serve::TraceRequest trace;  ///< workload descriptor (materialized server-side)
    double deadline_ms = 0.0;   ///< <= 0 = no deadline (serve/request.hpp semantics)
    std::string options;        ///< canonical option string (fingerprinted)
};

/// One served answer.  Carries the outcome taxonomy of DESIGN §16 over the
/// wire: shed/degraded/timed-out/draining answers are typed statuses, not
/// errors.  `schedule_bytes` is the canonical encoding produced by
/// encode_schedule() below — kept encoded so byte-identity checks can
/// compare payloads directly; decode_schedule() expands it on demand.
struct WireResponse {
    std::uint64_t id = 0;
    serve::ServeOutcome outcome = serve::ServeOutcome::kOk;
    bool cache_hit = false;
    bool coalesced = false;
    std::uint64_t fingerprint = 0;
    std::string schedule_bytes;  ///< empty when the outcome carries no schedule

    [[nodiscard]] bool has_schedule() const noexcept { return !schedule_bytes.empty(); }
};

/// Typed error message (FrameType::kError).  `request_id` == 0 marks a
/// session-level error (handshake violation, malformed frame) after which
/// the sender closes the connection; non-zero ids are request-level (e.g. an
/// unknown algorithm) and leave the session open.
struct WireError {
    std::uint64_t request_id = 0;
    std::uint32_t code = 0;  ///< WireErrorCode below
    std::string message;
};

/// Stable error codes for WireError::code.
enum class WireErrorCode : std::uint32_t {
    kUnknown = 0,
    kMalformedFrame = 1,   ///< FrameDecoder failed; detail names the FrameError
    kBadHandshake = 2,     ///< first frame was not Hello, or version mismatch
    kBadMessage = 3,       ///< frame payload failed to decode (CodecError)
    kRequestFailed = 4,    ///< engine raised an exception for this request
    kTooManyConnections = 5,  ///< connection cap reached; sent before close
    kServerDraining = 6,   ///< server is shutting down; no new requests
};

[[nodiscard]] const char* wire_error_code_name(WireErrorCode code) noexcept;

// ---------------------------------------------------------------------------
// Encode / decode.  Every decode throws CodecError on malformed payloads.
// ---------------------------------------------------------------------------

[[nodiscard]] std::string encode_hello(const WireHello& hello);
[[nodiscard]] WireHello decode_hello(std::string_view payload);

[[nodiscard]] std::string encode_hello_ack(const WireHelloAck& ack);
[[nodiscard]] WireHelloAck decode_hello_ack(std::string_view payload);

[[nodiscard]] std::string encode_request(const WireRequest& request);
[[nodiscard]] WireRequest decode_request(std::string_view payload);

[[nodiscard]] std::string encode_response(const WireResponse& response);
[[nodiscard]] WireResponse decode_response(std::string_view payload);

[[nodiscard]] std::string encode_error(const WireError& error);
[[nodiscard]] WireError decode_error(std::string_view payload);

/// Canonical schedule encoding: num_tasks, num_procs, num_placements, then
/// every placement in (task-id, insertion) order as (task, proc, start,
/// finish).  A deterministic scheduler therefore yields byte-identical
/// encodings for fingerprint-identical requests — the wire-level version of
/// the cache-hit bit-identity guarantee.
[[nodiscard]] std::string encode_schedule(const Schedule& schedule);
[[nodiscard]] Schedule decode_schedule(std::string_view bytes);

/// Build the response for a served result (schedule encoded iff present).
[[nodiscard]] WireResponse make_response(std::uint64_t id, const serve::ServeResult& result);

}  // namespace tsched::net
