#include "net/codec.hpp"

#include <cstring>

#include "util/fingerprint.hpp"

namespace tsched::net {

namespace {

// Canonical little-endian writer mirroring the Fnv1a absorption encodings
// (util/fingerprint.hpp): u64 LE, doubles as canonicalized bit patterns,
// strings length-prefixed.
class Writer {
public:
    void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
    void u64(std::uint64_t v) {
        for (int i = 0; i < 8; ++i) out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
    void f64(double v) { u64(Fnv1a::canonical_bits(v)); }
    void str(std::string_view s) {
        u64(s.size());
        out_.append(s.data(), s.size());
    }
    [[nodiscard]] std::string take() { return std::move(out_); }

private:
    std::string out_;
};

class Reader {
public:
    explicit Reader(std::string_view payload) : data_(payload) {}

    std::uint8_t u8() {
        need(1);
        return static_cast<std::uint8_t>(data_[pos_++]);
    }
    std::uint64_t u64() {
        need(8);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(static_cast<unsigned char>(data_[pos_ + static_cast<std::size_t>(i)]))
                 << (8 * i);
        pos_ += 8;
        return v;
    }
    double f64() {
        const std::uint64_t bits = u64();
        double v = 0.0;
        static_assert(sizeof(v) == sizeof(bits));
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }
    std::string str() {
        const std::uint64_t len = u64();
        if (len > data_.size() - pos_)
            throw CodecError(CodecStatus::kTruncated,
                             "net codec: string length " + std::to_string(len) +
                                 " overruns the payload");
        std::string s(data_.substr(pos_, len));
        pos_ += len;
        return s;
    }
    /// Every message must consume its payload exactly.
    void done() const {
        if (pos_ != data_.size())
            throw CodecError(CodecStatus::kTrailingBytes,
                             "net codec: " + std::to_string(data_.size() - pos_) +
                                 " trailing bytes after the message");
    }

private:
    void need(std::size_t n) const {
        if (n > data_.size() - pos_)
            throw CodecError(CodecStatus::kTruncated, "net codec: payload truncated");
    }

    std::string_view data_;
    std::size_t pos_ = 0;
};

workload::Shape shape_or_throw(const std::string& name) {
    try {
        return workload::shape_from_name(name);
    } catch (const std::exception&) {
        throw CodecError(CodecStatus::kBadEnum, "net codec: unknown shape '" + name + "'");
    }
}

workload::Net net_or_throw(const std::string& name) {
    try {
        return workload::net_from_name(name);
    } catch (const std::exception&) {
        throw CodecError(CodecStatus::kBadEnum, "net codec: unknown net '" + name + "'");
    }
}

}  // namespace

const char* codec_status_name(CodecStatus status) noexcept {
    switch (status) {
        case CodecStatus::kOk: return "ok";
        case CodecStatus::kTruncated: return "truncated";
        case CodecStatus::kTrailingBytes: return "trailing_bytes";
        case CodecStatus::kBadBodyFormat: return "bad_body_format";
        case CodecStatus::kBadEnum: return "bad_enum";
        case CodecStatus::kBadValue: return "bad_value";
    }
    return "unknown";
}

const char* wire_error_code_name(WireErrorCode code) noexcept {
    switch (code) {
        case WireErrorCode::kUnknown: return "unknown";
        case WireErrorCode::kMalformedFrame: return "malformed_frame";
        case WireErrorCode::kBadHandshake: return "bad_handshake";
        case WireErrorCode::kBadMessage: return "bad_message";
        case WireErrorCode::kRequestFailed: return "request_failed";
        case WireErrorCode::kTooManyConnections: return "too_many_connections";
        case WireErrorCode::kServerDraining: return "server_draining";
    }
    return "unknown";
}

std::string encode_hello(const WireHello& hello) {
    Writer w;
    w.u64(hello.codec_version);
    w.str(hello.client_name);
    return w.take();
}

WireHello decode_hello(std::string_view payload) {
    Reader r(payload);
    WireHello hello;
    hello.codec_version = r.u64();
    hello.client_name = r.str();
    r.done();
    return hello;
}

std::string encode_hello_ack(const WireHelloAck& ack) {
    Writer w;
    w.u64(ack.codec_version);
    w.u64(ack.max_frame_bytes);
    w.str(ack.server_name);
    return w.take();
}

WireHelloAck decode_hello_ack(std::string_view payload) {
    Reader r(payload);
    WireHelloAck ack;
    ack.codec_version = r.u64();
    ack.max_frame_bytes = r.u64();
    ack.server_name = r.str();
    r.done();
    return ack;
}

std::string encode_request(const WireRequest& request) {
    Writer w;
    w.u64(request.id);
    w.u8(kRequestBodyDescriptor);
    w.str(request.trace.algo);
    w.str(workload::shape_name(request.trace.shape));
    w.u64(request.trace.size);
    w.u64(request.trace.procs);
    w.str(workload::net_name(request.trace.net));
    w.f64(request.trace.ccr);
    w.f64(request.trace.beta);
    w.u64(request.trace.seed);
    w.f64(request.deadline_ms);
    w.str(request.options);
    return w.take();
}

WireRequest decode_request(std::string_view payload) {
    Reader r(payload);
    WireRequest request;
    request.id = r.u64();
    const std::uint8_t format = r.u8();
    if (format != kRequestBodyDescriptor)
        throw CodecError(CodecStatus::kBadBodyFormat,
                         "net codec: unknown request body format " + std::to_string(format));
    request.trace.algo = r.str();
    request.trace.shape = shape_or_throw(r.str());
    request.trace.size = r.u64();
    request.trace.procs = r.u64();
    request.trace.net = net_or_throw(r.str());
    request.trace.ccr = r.f64();
    request.trace.beta = r.f64();
    request.trace.seed = r.u64();
    request.deadline_ms = r.f64();
    request.options = r.str();
    if (request.trace.size == 0 || request.trace.procs == 0)
        throw CodecError(CodecStatus::kBadValue, "net codec: zero size or procs");
    r.done();
    return request;
}

std::string encode_response(const WireResponse& response) {
    Writer w;
    w.u64(response.id);
    w.u8(static_cast<std::uint8_t>(response.outcome));
    std::uint8_t flags = 0;
    if (response.cache_hit) flags |= 1u;
    if (response.coalesced) flags |= 2u;
    w.u8(flags);
    w.u64(response.fingerprint);
    w.str(response.schedule_bytes);
    return w.take();
}

WireResponse decode_response(std::string_view payload) {
    Reader r(payload);
    WireResponse response;
    response.id = r.u64();
    const std::uint8_t outcome = r.u8();
    if (outcome > static_cast<std::uint8_t>(serve::ServeOutcome::kDraining))
        throw CodecError(CodecStatus::kBadEnum,
                         "net codec: unknown outcome " + std::to_string(outcome));
    response.outcome = static_cast<serve::ServeOutcome>(outcome);
    const std::uint8_t flags = r.u8();
    if ((flags & ~3u) != 0)
        throw CodecError(CodecStatus::kBadValue, "net codec: unknown response flags");
    response.cache_hit = (flags & 1u) != 0;
    response.coalesced = (flags & 2u) != 0;
    response.fingerprint = r.u64();
    response.schedule_bytes = r.str();
    r.done();
    return response;
}

std::string encode_error(const WireError& error) {
    Writer w;
    w.u64(error.request_id);
    w.u64(error.code);
    w.str(error.message);
    return w.take();
}

WireError decode_error(std::string_view payload) {
    Reader r(payload);
    WireError error;
    error.request_id = r.u64();
    const std::uint64_t code = r.u64();
    if (code > 0xFFFFFFFFull)
        throw CodecError(CodecStatus::kBadValue, "net codec: error code out of range");
    error.code = static_cast<std::uint32_t>(code);
    error.message = r.str();
    r.done();
    return error;
}

std::string encode_schedule(const Schedule& schedule) {
    Writer w;
    w.u64(schedule.num_tasks());
    w.u64(schedule.num_procs());
    w.u64(schedule.num_placements());
    for (TaskId task = 0; task < static_cast<TaskId>(schedule.num_tasks()); ++task) {
        for (const Placement& p : schedule.placements(task)) {
            w.u64(static_cast<std::uint64_t>(p.task));
            w.u64(static_cast<std::uint64_t>(p.proc));
            w.f64(p.start);
            w.f64(p.finish);
        }
    }
    return w.take();
}

Schedule decode_schedule(std::string_view bytes) {
    Reader r(bytes);
    const std::uint64_t num_tasks = r.u64();
    const std::uint64_t num_procs = r.u64();
    const std::uint64_t num_placements = r.u64();
    // A placement occupies 32 bytes; reject counts the payload cannot hold
    // before constructing anything (hostile-length discipline, frame.hpp).
    // Wire schedules are complete (num_tasks <= num_placements), which also
    // bounds the Schedule allocation by the payload size.
    if (num_placements > bytes.size() / 32)
        throw CodecError(CodecStatus::kBadValue,
                         "net codec: placement count overruns the payload");
    if (num_tasks > num_placements || num_procs > (1u << 20))
        throw CodecError(CodecStatus::kBadValue,
                         "net codec: schedule dimensions exceed the placement count");
    Schedule schedule(num_tasks, num_procs);
    for (std::uint64_t i = 0; i < num_placements; ++i) {
        const std::uint64_t task = r.u64();
        const std::uint64_t proc = r.u64();
        const double start = r.f64();
        const double finish = r.f64();
        if (task >= num_tasks || proc >= num_procs)
            throw CodecError(CodecStatus::kBadValue, "net codec: placement id out of range");
        try {
            schedule.add(static_cast<TaskId>(task), static_cast<ProcId>(proc), start, finish);
        } catch (const std::invalid_argument& e) {
            throw CodecError(CodecStatus::kBadValue,
                             std::string("net codec: bad placement: ") + e.what());
        }
    }
    r.done();
    return schedule;
}

WireResponse make_response(std::uint64_t id, const serve::ServeResult& result) {
    WireResponse response;
    response.id = id;
    response.outcome = result.outcome;
    response.cache_hit = result.cache_hit;
    response.coalesced = result.coalesced;
    response.fingerprint = result.fingerprint;
    if (result.schedule) response.schedule_bytes = encode_schedule(*result.schedule);
    return response;
}

}  // namespace tsched::net
