// ServeServer: the socket front-end that puts a wire on the ServeEngine
// (DESIGN §17).
//
// One poll()-driven event-loop thread owns the listener and every
// per-connection Session state machine:
//
//   handshake --Hello/HelloAck--> open --stop()--> draining --flush--> closed
//
// Sessions speak length-prefixed CRC-checked frames (net/frame.hpp) carrying
// codec messages (net/codec.hpp).  The loop reads a bounded amount per
// session per tick and decodes at most `max_requests_per_tick` request
// frames per session per tick — per-client fair dispatch into the engine, so
// one firehose connection cannot starve its neighbours.  Each decoded
// request is materialized and submitted to the borrowed engine exactly like
// in-process trace replay; the returned future is parked on the session and
// pumped into the outbox when ready.  Responses are correlated by the
// client-chosen request id and may complete out of order (cache hits resolve
// immediately); ordering across requests is explicitly NOT a protocol
// guarantee.
//
// Backpressure (the bounded-queue discipline of DESIGN §16, applied per
// connection): when a session's outstanding work — parked futures plus
// encoded-but-unsent response frames — reaches `per_conn_queue`, the loop
// stops polling that socket for reads.  The kernel receive buffer fills, TCP
// flow control pushes back on the client, and no queue in the server grows
// without bound.  Reading resumes as soon as replies drain.
//
// Shutdown composes with the engine's lifecycle: request_stop() (async-
// signal-safe — the tsched_served SIGTERM handler calls it directly) wakes
// the loop via a self-pipe; the loop closes the listener, stops reading new
// bytes, drains the engine (pending work resolves kDraining, in-flight work
// completes and its replies are still delivered), flushes every session's
// outbox bounded by `flush_timeout_ms`, and exits.  Frames already buffered
// when the stop arrived still get typed kDraining responses — a draining
// server answers everything it ever read, it just refuses to compute more.
//
// Threading: the loop thread exclusively owns all session state; the
// constructor/start()/stop() run on the owner's thread; cross-thread
// communication is the stop flag, the wake pipe, and atomic counters.  The
// ThreadPool is borrowed (two servers can share one pool; draining one must
// not disturb the other — tests/test_net.cpp pins it).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/codec.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"
#include "serve/serve_engine.hpp"
#include "util/thread_pool.hpp"

namespace tsched::net {

struct ServerConfig {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;        ///< 0 = ephemeral; read back via ServeServer::port()
    std::size_t max_conns = 64;    ///< concurrent sessions; 0 = unbounded
    std::size_t per_conn_queue = 64;  ///< outstanding replies per session; 0 = unbounded
    std::size_t max_frame_bytes = 1u << 20;  ///< frame payload cap (both directions)
    std::size_t max_requests_per_tick = 8;   ///< fair-dispatch budget per session per tick
    double flush_timeout_ms = 5000.0;  ///< post-drain outbox flush bound
    int listen_backlog = 64;
    std::string server_name = "tsched_served";
    serve::ServeConfig engine;  ///< cache + admission config (DESIGN §16 knobs)
};

struct NetServerStats {
    std::uint64_t accepted = 0;         ///< connections accepted
    std::uint64_t refused = 0;          ///< refused at the connection cap
    std::uint64_t handshakes = 0;       ///< sessions that completed Hello/HelloAck
    std::uint64_t requests = 0;         ///< request frames decoded and submitted
    std::uint64_t responses = 0;        ///< response frames fully written
    std::uint64_t errors_sent = 0;      ///< Error frames sent (session or request level)
    std::uint64_t protocol_errors = 0;  ///< sessions closed on a malformed stream
    std::uint64_t backpressure_pauses = 0;  ///< read-pause transitions
    std::uint64_t bytes_in = 0;
    std::uint64_t bytes_out = 0;
};

/// What shutdown did (mirrors serve::DrainReport one level up).
struct NetDrainReport {
    bool clean = true;              ///< engine drained and every outbox flushed in time
    serve::DrainReport engine;      ///< the engine-level drain outcome
    std::size_t flushed_sessions = 0;  ///< sessions whose outbox emptied before close
    std::size_t forced_sessions = 0;   ///< sessions closed with unsent replies
};

class ServeServer {
public:
    /// The pool is borrowed and must outlive the server (exactly the
    /// ServeEngine contract; the engine lives inside the server).
    ServeServer(ServerConfig config, ThreadPool& pool);

    /// stop()s if still running.
    ~ServeServer();

    ServeServer(const ServeServer&) = delete;
    ServeServer& operator=(const ServeServer&) = delete;

    /// Bind + listen (throws std::system_error on failure — port in use,
    /// bad host), then start the event loop thread.  After start() returns,
    /// port() is the live bound port.
    void start();

    /// Async-signal-safe stop request: flags the loop and wakes it through
    /// the self-pipe.  Returns immediately; the loop performs the graceful
    /// drain described in the file header.
    void request_stop() noexcept;

    /// request_stop() + join the loop thread; returns the drain report.
    /// Idempotent (later calls return the first report).
    NetDrainReport stop();

    /// Block until the loop exits (a stop was requested by someone —
    /// typically a signal handler).  Does not itself request the stop.
    void wait();

    [[nodiscard]] bool running() const noexcept { return running_.load(std::memory_order_acquire); }
    [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
    [[nodiscard]] const ServerConfig& config() const noexcept { return config_; }
    [[nodiscard]] NetServerStats stats() const noexcept;
    [[nodiscard]] serve::EngineStats engine_stats() const { return engine_.stats(); }
    [[nodiscard]] obs::MetricsSnapshot engine_metrics() const { return engine_.metrics_snapshot(); }

private:
    struct Session;

    void loop();
    void accept_ready();
    void read_session(Session& session);
    void process_frames(Session& session);
    void handle_frame(Session& session, FrameType type, const std::string& payload);
    void pump_futures(Session& session);
    void flush_session(Session& session);
    void send_frame(Session& session, FrameType type, const std::string& payload);
    void send_error(Session& session, std::uint64_t request_id, WireErrorCode code,
                    const std::string& message, bool close_after);
    [[nodiscard]] bool backpressured(const Session& session) const noexcept;

    ServerConfig config_;
    ThreadPool& pool_;
    serve::ServeEngine engine_;

    Listener listener_;
    std::uint16_t port_ = 0;
    FdHandle wake_read_;
    FdHandle wake_write_;

    std::thread loop_thread_;
    std::atomic<bool> stop_requested_{false};
    std::atomic<bool> running_{false};
    bool stopped_ = false;          ///< owner-thread latch for idempotent stop()
    NetDrainReport drain_report_;   ///< written by the loop thread before exit

    std::vector<std::unique_ptr<Session>> sessions_;

    std::atomic<std::uint64_t> accepted_{0};
    std::atomic<std::uint64_t> refused_{0};
    std::atomic<std::uint64_t> handshakes_{0};
    std::atomic<std::uint64_t> requests_{0};
    std::atomic<std::uint64_t> responses_{0};
    std::atomic<std::uint64_t> errors_sent_{0};
    std::atomic<std::uint64_t> protocol_errors_{0};
    std::atomic<std::uint64_t> backpressure_pauses_{0};
    std::atomic<std::uint64_t> bytes_in_{0};
    std::atomic<std::uint64_t> bytes_out_{0};
};

}  // namespace tsched::net
