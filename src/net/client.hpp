// ServeClient: blocking client for the tsched wire protocol (DESIGN §17).
//
// One client owns one connection.  The constructor connects and completes
// the Hello/HelloAck handshake; after that the client supports two styles:
//
//   - call(trace): send one request and block for its reply — the simple
//     synchronous path used by examples and smoke tests.
//   - send(trace) / recv(): pipelined.  send() queues a request frame and
//     returns the client-chosen id immediately; recv() blocks for the next
//     reply frame (replies may arrive out of request order — correlate by
//     ClientReply::id).  The replay driver keeps a sliding window of
//     outstanding sends per connection this way.
//
// Every reply is a ClientReply: either a decoded WireResponse or a typed
// WireError relayed from the server (ok() distinguishes them).  Transport
// failures — connection reset, malformed bytes from the server, frame
// decode errors — throw; protocol-level errors do not.
//
// Not thread-safe: one ServeClient per thread (the replay driver follows
// exactly this rule — N connections means N threads each owning one).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "net/codec.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"

namespace tsched::net {

/// One reply off the wire: a response or a typed server-side error.
struct ClientReply {
    std::uint64_t id = 0;  ///< request id (0 for session-level errors)
    std::optional<WireResponse> response;
    std::optional<WireError> error;

    [[nodiscard]] bool ok() const noexcept { return response.has_value(); }
};

struct ClientConfig {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    std::string client_name = "tsched_client";
    std::size_t max_frame_bytes = kDefaultMaxPayloadBytes;
};

class ServeClient {
public:
    /// Connect + handshake.  Throws std::system_error (connect failure) or
    /// std::runtime_error (handshake rejected / protocol violation).
    explicit ServeClient(const ClientConfig& config);

    ServeClient(const ServeClient&) = delete;
    ServeClient& operator=(const ServeClient&) = delete;
    ServeClient(ServeClient&&) = default;
    ServeClient& operator=(ServeClient&&) = default;

    /// Queue one request; returns the id to correlate the reply with.
    std::uint64_t send(const serve::TraceRequest& trace, double deadline_ms = 0.0,
                       const std::string& options = {});

    /// Block for the next reply frame (any outstanding id).
    [[nodiscard]] ClientReply recv();

    /// send() + recv-until-this-id.  Convenience for synchronous callers
    /// with no other outstanding requests.
    [[nodiscard]] ClientReply call(const serve::TraceRequest& trace, double deadline_ms = 0.0,
                                   const std::string& options = {});

    /// What the server advertised in its HelloAck.
    [[nodiscard]] const WireHelloAck& server_info() const noexcept { return ack_; }

    /// Escape hatch for hostile-input tests: write raw bytes to the socket.
    void send_raw(std::string_view bytes);

    /// Orderly close (tests use this to provoke server-side EOF handling).
    void close() noexcept { fd_.reset(); }

private:
    [[nodiscard]] Frame read_frame();

    FdHandle fd_;
    FrameDecoder decoder_;
    WireHelloAck ack_;
    std::uint64_t next_id_ = 1;
};

}  // namespace tsched::net
