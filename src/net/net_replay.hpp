// Multi-connection replay driver: E21's measurement loop (DESIGN §17).
//
// Replays a .tsr request stream against a *live* server over N concurrent
// connections: one thread per connection, each owning one ServeClient, each
// replaying its round-robin slice of the stream with a sliding window of
// `window` outstanding pipelined requests.  Latency is the client-observed
// round trip (send -> matching reply), recorded both as an exact vector
// (order statistics) and through per-thread obs::LatencyHistograms that
// merge into one aggregate — merge order cannot change the snapshot, so the
// report is deterministic given the per-request samples.
//
// The wire-level accounting identity extends the engine's (DESIGN §16) with
// a transport failure class:
//
//   ok + shed + degraded + timed_out + draining + failed == requests
//
// `failed` counts requests answered by a typed Error frame or lost to a
// connection drop; nothing is silently dropped.
//
// Byte-identity is audited on the fly: every kOk/kDegraded response's
// schedule payload is hashed, and
//   * payload_consistent — within the run, equal fingerprints always
//     carried byte-identical schedule payloads;
//   * schedule_digest    — XOR over *distinct* fingerprints of
//     fnv1a(fingerprint || payload).  XOR makes the digest independent of
//     arrival order and of how many cache hits repeated a payload, so two
//     runs of the same trace — different pool widths, different connection
//     counts, cache on or off — must produce the same digest (the
//     determinism battery and net_smoke.sh assert exactly this).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/request_trace.hpp"

namespace tsched::net {

struct NetReplayOptions {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    std::size_t conns = 8;    ///< concurrent connections (threads); >= 1
    std::size_t window = 16;  ///< outstanding pipelined requests per connection; >= 1
    std::size_t epochs = 1;   ///< full passes over the stream (>= 1)
    double deadline_ms = 0.0;  ///< stamped on every request (<= 0 = none)
    std::string client_name = "net_replay";
};

struct NetReplayReport {
    std::size_t conns = 0;
    std::size_t requests = 0;  ///< sent (stream length x epochs)
    std::size_t replies = 0;   ///< received (== requests unless connections died)
    double wall_ms = 0.0;
    double qps = 0.0;

    // Exact order statistics over all per-request round-trip latencies.
    double latency_mean_ms = 0.0;
    double latency_p50_ms = 0.0;
    double latency_p95_ms = 0.0;
    double latency_p99_ms = 0.0;
    double latency_p999_ms = 0.0;
    double latency_max_ms = 0.0;
    // The merged per-thread histogram view of the same samples.
    double hist_p50_ms = 0.0;
    double hist_p95_ms = 0.0;
    double hist_p99_ms = 0.0;
    obs::HistogramSnapshot latency_hist;

    // Outcome tally (see accounting identity above).
    std::uint64_t ok = 0;
    std::uint64_t shed = 0;
    std::uint64_t degraded = 0;
    std::uint64_t timed_out = 0;
    std::uint64_t draining = 0;
    std::uint64_t failed = 0;  ///< typed Error replies + connection drops
    std::uint64_t cache_hits = 0;

    std::uint64_t schedule_digest = 0;  ///< order-independent payload digest
    bool payload_consistent = true;     ///< equal fingerprints -> equal bytes

    [[nodiscard]] bool accounting_ok() const noexcept {
        return ok + shed + degraded + timed_out + draining + failed == requests;
    }
};

/// Replay `trace` x epochs against a live server.  Throws std::system_error
/// if the initial connections cannot be established; per-connection failures
/// after that surface as `failed` replies, not exceptions.
[[nodiscard]] NetReplayReport replay_net(const std::vector<serve::TraceRequest>& trace,
                                         const NetReplayOptions& options);

}  // namespace tsched::net
