#include "net/frame.hpp"

#include <array>
#include <stdexcept>

namespace tsched::net {

namespace {

// Reflected CRC-32 lookup table, generated once at static-init time.
std::array<std::uint32_t, 256> make_crc_table() noexcept {
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int bit = 0; bit < 8; ++bit)
            c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

const std::array<std::uint32_t, 256>& crc_table() noexcept {
    static const std::array<std::uint32_t, 256> table = make_crc_table();
    return table;
}

void put_u32le(std::string& out, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

std::uint32_t get_u32le(const char* p) noexcept {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
    return v;
}

}  // namespace

bool frame_type_known(std::uint8_t value) noexcept {
    return value >= static_cast<std::uint8_t>(FrameType::kHello) &&
           value <= static_cast<std::uint8_t>(FrameType::kError);
}

const char* frame_type_name(FrameType type) noexcept {
    switch (type) {
        case FrameType::kHello: return "hello";
        case FrameType::kHelloAck: return "hello_ack";
        case FrameType::kRequest: return "request";
        case FrameType::kResponse: return "response";
        case FrameType::kError: return "error";
    }
    return "unknown";
}

const char* frame_error_name(FrameError error) noexcept {
    switch (error) {
        case FrameError::kNone: return "none";
        case FrameError::kBadMagic: return "bad_magic";
        case FrameError::kBadVersion: return "bad_version";
        case FrameError::kBadType: return "bad_type";
        case FrameError::kBadReserved: return "bad_reserved";
        case FrameError::kOversized: return "oversized";
        case FrameError::kBadCrc: return "bad_crc";
    }
    return "unknown";
}

std::uint32_t crc32(std::string_view data) noexcept {
    const auto& table = crc_table();
    std::uint32_t crc = 0xFFFFFFFFu;
    for (const char ch : data)
        crc = table[(crc ^ static_cast<unsigned char>(ch)) & 0xffu] ^ (crc >> 8);
    return crc ^ 0xFFFFFFFFu;
}

std::string encode_frame(FrameType type, std::string_view payload, std::size_t max_payload) {
    if (payload.size() > max_payload)
        throw std::length_error("net::encode_frame: payload of " +
                                std::to_string(payload.size()) + " bytes exceeds the cap of " +
                                std::to_string(max_payload));
    std::string out;
    out.reserve(kFrameHeaderBytes + payload.size());
    put_u32le(out, kFrameMagic);
    out.push_back(static_cast<char>(kProtocolVersion));
    out.push_back(static_cast<char>(type));
    out.push_back(0);
    out.push_back(0);
    put_u32le(out, static_cast<std::uint32_t>(payload.size()));
    put_u32le(out, crc32(payload));
    out.append(payload);
    return out;
}

void FrameDecoder::feed(std::string_view bytes) {
    if (failed()) return;
    // Compact lazily: drop the consumed prefix before growing the buffer so
    // a long-lived session does not accrete every frame it ever decoded.
    if (consumed_ > 0 && (consumed_ >= buffer_.size() || consumed_ > 4096)) {
        buffer_.erase(0, consumed_);
        consumed_ = 0;
    }
    buffer_.append(bytes.data(), bytes.size());
}

std::optional<Frame> FrameDecoder::next() {
    if (failed()) return std::nullopt;
    if (buffer_.size() - consumed_ < kFrameHeaderBytes) return std::nullopt;
    const char* header = buffer_.data() + consumed_;

    if (get_u32le(header) != kFrameMagic) {
        error_ = FrameError::kBadMagic;
        return std::nullopt;
    }
    if (static_cast<std::uint8_t>(header[4]) != kProtocolVersion) {
        error_ = FrameError::kBadVersion;
        return std::nullopt;
    }
    const auto raw_type = static_cast<std::uint8_t>(header[5]);
    if (!frame_type_known(raw_type)) {
        error_ = FrameError::kBadType;
        return std::nullopt;
    }
    if (header[6] != 0 || header[7] != 0) {
        error_ = FrameError::kBadReserved;
        return std::nullopt;
    }
    const std::uint32_t declared = get_u32le(header + 8);
    // Validate the declared length against the cap *before* waiting for (or
    // allocating) any payload bytes: a hostile length field must cost O(1).
    if (declared > max_payload_) {
        error_ = FrameError::kOversized;
        return std::nullopt;
    }
    if (buffer_.size() - consumed_ < kFrameHeaderBytes + declared) return std::nullopt;

    const std::string_view payload(buffer_.data() + consumed_ + kFrameHeaderBytes, declared);
    if (crc32(payload) != get_u32le(header + 12)) {
        error_ = FrameError::kBadCrc;
        return std::nullopt;
    }
    Frame frame;
    frame.type = static_cast<FrameType>(raw_type);
    frame.payload.assign(payload);
    consumed_ += kFrameHeaderBytes + declared;
    return frame;
}

}  // namespace tsched::net
