#include "net/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <deque>
#include <future>
#include <system_error>
#include <utility>

#include "net/codec.hpp"
#include "net/frame.hpp"
#include "serve/request_trace.hpp"
#include "util/stopwatch.hpp"

namespace tsched::net {

namespace {

constexpr std::size_t kReadChunk = 16 * 1024;
constexpr int kReadsPerTick = 4;

}  // namespace

// ---------------------------------------------------------------------------
// Session: all state for one connection.  Owned and touched exclusively by
// the event-loop thread.
// ---------------------------------------------------------------------------

struct ServeServer::Session {
    enum class State : std::uint8_t { kHandshake, kOpen, kClosing, kClosed };

    explicit Session(FdHandle socket, std::size_t max_payload)
        : fd(std::move(socket)), decoder(max_payload) {}

    FdHandle fd;
    State state = State::kHandshake;
    FrameDecoder decoder;
    bool protocol_error_sent = false;
    bool was_paused = false;

    struct OutFrame {
        std::string bytes;
        std::size_t offset = 0;
        bool is_response = false;
    };
    std::deque<OutFrame> outbox;

    struct PendingReply {
        std::uint64_t id = 0;
        std::future<serve::ServeResult> future;
    };
    std::vector<PendingReply> pending;

    [[nodiscard]] bool open_for_requests() const noexcept { return state == State::kOpen; }
    [[nodiscard]] bool closed() const noexcept { return state == State::kClosed; }
    [[nodiscard]] std::size_t load() const noexcept { return pending.size() + outbox.size(); }
};

// ---------------------------------------------------------------------------
// Construction / lifecycle.
// ---------------------------------------------------------------------------

ServeServer::ServeServer(ServerConfig config, ThreadPool& pool)
    : config_(std::move(config)), pool_(pool), engine_(config_.engine, pool_) {}

ServeServer::~ServeServer() { (void)stop(); }

void ServeServer::start() {
    if (running_.load(std::memory_order_acquire) || loop_thread_.joinable())
        throw std::logic_error("ServeServer: start() called twice");
    listener_ = listen_tcp(config_.host, config_.port, config_.listen_backlog);
    set_nonblocking(listener_.fd.get());
    port_ = listener_.port;

    int pipe_fds[2] = {-1, -1};
    if (::pipe(pipe_fds) != 0)
        throw std::system_error(errno, std::generic_category(), "pipe");
    wake_read_ = FdHandle(pipe_fds[0]);
    wake_write_ = FdHandle(pipe_fds[1]);
    set_nonblocking(wake_read_.get());
    set_nonblocking(wake_write_.get());

    stop_requested_.store(false, std::memory_order_release);
    running_.store(true, std::memory_order_release);
    loop_thread_ = std::thread([this] { loop(); });
}

void ServeServer::request_stop() noexcept {
    stop_requested_.store(true, std::memory_order_release);
    // write(2) is async-signal-safe; the byte's only job is waking poll().
    if (wake_write_.valid()) {
        const ssize_t rc = ::write(wake_write_.get(), "x", 1);
        (void)rc;  // pipe full means a wake-up is already pending
    }
}

NetDrainReport ServeServer::stop() {
    request_stop();
    if (loop_thread_.joinable()) loop_thread_.join();
    stopped_ = true;
    return drain_report_;
}

void ServeServer::wait() {
    if (loop_thread_.joinable()) loop_thread_.join();
}

NetServerStats ServeServer::stats() const noexcept {
    NetServerStats s;
    s.accepted = accepted_.load(std::memory_order_relaxed);
    s.refused = refused_.load(std::memory_order_relaxed);
    s.handshakes = handshakes_.load(std::memory_order_relaxed);
    s.requests = requests_.load(std::memory_order_relaxed);
    s.responses = responses_.load(std::memory_order_relaxed);
    s.errors_sent = errors_sent_.load(std::memory_order_relaxed);
    s.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
    s.backpressure_pauses = backpressure_pauses_.load(std::memory_order_relaxed);
    s.bytes_in = bytes_in_.load(std::memory_order_relaxed);
    s.bytes_out = bytes_out_.load(std::memory_order_relaxed);
    return s;
}

bool ServeServer::backpressured(const Session& session) const noexcept {
    return config_.per_conn_queue > 0 && session.load() >= config_.per_conn_queue;
}

// ---------------------------------------------------------------------------
// Event loop.
// ---------------------------------------------------------------------------

void ServeServer::loop() {
    bool draining = false;
    Stopwatch flush_clock;

    std::vector<pollfd> fds;
    while (true) {
        // --- enter the drain phase exactly once ---------------------------
        if (stop_requested_.load(std::memory_order_acquire) && !draining) {
            draining = true;
            listener_.fd.reset();
            // Resolves the engine's pending queue as kDraining, waits
            // (bounded by the engine's drain_timeout_ms) for in-flight
            // computations, and leaves every submitted future ready.
            drain_report_.engine = engine_.drain();
            // Frames buffered before the stop still get typed answers:
            // submits against a drained engine resolve kDraining instantly.
            for (auto& session : sessions_)
                if (session->open_for_requests()) process_frames(*session);
            flush_clock = Stopwatch();
        }

        // --- poll registration --------------------------------------------
        fds.clear();
        fds.push_back({wake_read_.get(), POLLIN, 0});
        const bool accepting = !draining && listener_.fd.valid();
        if (accepting) fds.push_back({listener_.fd.get(), POLLIN, 0});
        const std::size_t session_base = fds.size();
        bool any_pending = false;
        for (auto& session : sessions_) {
            short events = 0;
            const bool paused = backpressured(*session);
            if (paused && !session->was_paused)
                backpressure_pauses_.fetch_add(1, std::memory_order_relaxed);
            session->was_paused = paused;
            if (!draining && !paused &&
                (session->state == Session::State::kHandshake ||
                 session->state == Session::State::kOpen))
                events |= POLLIN;
            if (!session->outbox.empty()) events |= POLLOUT;
            if (!session->pending.empty()) any_pending = true;
            fds.push_back({session->fd.get(), events, 0});
        }

        const int timeout_ms = any_pending ? 1 : (draining ? 5 : 200);
        const int rc = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), timeout_ms);
        if (rc < 0 && errno != EINTR && errno != EAGAIN) break;  // unrecoverable

        // --- wake pipe ----------------------------------------------------
        if (fds[0].revents != 0) {
            char buf[64];
            while (::read(wake_read_.get(), buf, sizeof buf) > 0) {
            }
        }

        // --- accept -------------------------------------------------------
        if (accepting && fds[1].revents != 0) accept_ready();

        // --- per-session work ---------------------------------------------
        for (std::size_t i = 0; i < sessions_.size(); ++i) {
            Session& session = *sessions_[i];
            if (session.closed()) continue;
            const short revents =
                session_base + i < fds.size() ? fds[session_base + i].revents : 0;
            if ((revents & (POLLERR | POLLHUP | POLLNVAL)) != 0 &&
                (revents & POLLIN) == 0 && session.outbox.empty()) {
                session.state = Session::State::kClosed;
                continue;
            }
            if ((revents & POLLIN) != 0) read_session(session);
            if (!session.closed() && !draining) process_frames(session);
            if (!session.closed()) pump_futures(session);
            if (!session.closed()) flush_session(session);
            if (session.state == Session::State::kClosing && session.outbox.empty())
                session.state = Session::State::kClosed;
        }
        sessions_.erase(std::remove_if(sessions_.begin(), sessions_.end(),
                                       [](const std::unique_ptr<Session>& s) {
                                           return s->closed();
                                       }),
                        sessions_.end());

        // --- drain exit condition -----------------------------------------
        if (draining) {
            bool all_flushed = true;
            for (auto& session : sessions_) {
                pump_futures(*session);
                flush_session(*session);
                if (!session->pending.empty() || !session->outbox.empty()) all_flushed = false;
            }
            if (all_flushed) {
                drain_report_.flushed_sessions += sessions_.size();
                sessions_.clear();
                break;
            }
            if (flush_clock.elapsed_ms() > config_.flush_timeout_ms) {
                for (auto& session : sessions_)
                    if (!session->pending.empty() || !session->outbox.empty())
                        ++drain_report_.forced_sessions;
                    else
                        ++drain_report_.flushed_sessions;
                sessions_.clear();
                drain_report_.clean = false;
                break;
            }
        }
    }

    drain_report_.clean = drain_report_.clean && drain_report_.engine.clean;
    running_.store(false, std::memory_order_release);
}

void ServeServer::accept_ready() {
    while (true) {
        FdHandle conn(::accept(listener_.fd.get(), nullptr, nullptr));
        if (!conn.valid()) {
            if (errno == EINTR) continue;
            return;  // EAGAIN or transient accept failure: try next tick
        }
        if (config_.max_conns > 0 && sessions_.size() >= config_.max_conns) {
            // Typed refusal (still a blocking fd: the frame is tiny and the
            // socket buffer is empty, so this cannot stall the loop).
            WireError err;
            err.code = static_cast<std::uint32_t>(WireErrorCode::kTooManyConnections);
            err.message = "connection cap " + std::to_string(config_.max_conns) + " reached";
            const std::string frame = encode_frame(FrameType::kError, encode_error(err),
                                                   config_.max_frame_bytes);
            (void)::send(conn.get(), frame.data(), frame.size(), MSG_NOSIGNAL);
            refused_.fetch_add(1, std::memory_order_relaxed);
            continue;
        }
        set_nonblocking(conn.get());
        set_nodelay(conn.get());
        accepted_.fetch_add(1, std::memory_order_relaxed);
        sessions_.push_back(std::make_unique<Session>(std::move(conn), config_.max_frame_bytes));
    }
}

void ServeServer::read_session(Session& session) {
    char buf[kReadChunk];
    for (int i = 0; i < kReadsPerTick; ++i) {
        const long n = read_some(session.fd.get(), buf, sizeof buf);
        if (n > 0) {
            bytes_in_.fetch_add(static_cast<std::uint64_t>(n), std::memory_order_relaxed);
            session.decoder.feed(std::string_view(buf, static_cast<std::size_t>(n)));
            if (static_cast<std::size_t>(n) < sizeof buf) break;
            continue;
        }
        if (n == 0) break;  // EAGAIN
        // EOF or error: deliver what is already queued, then close.
        session.state = session.outbox.empty() ? Session::State::kClosed
                                               : Session::State::kClosing;
        return;
    }
}

void ServeServer::process_frames(Session& session) {
    std::size_t handled = 0;
    while (!session.closed() && session.state != Session::State::kClosing &&
           handled < config_.max_requests_per_tick && !backpressured(session)) {
        auto frame = session.decoder.next();
        if (!frame) break;
        handle_frame(session, frame->type, frame->payload);
        ++handled;
    }
    if (session.decoder.failed() && !session.protocol_error_sent) {
        session.protocol_error_sent = true;
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        send_error(session, 0, WireErrorCode::kMalformedFrame,
                   std::string("malformed frame: ") +
                       frame_error_name(session.decoder.error()),
                   /*close_after=*/true);
    }
}

void ServeServer::handle_frame(Session& session, FrameType type, const std::string& payload) {
    if (session.state == Session::State::kHandshake) {
        if (type != FrameType::kHello) {
            send_error(session, 0, WireErrorCode::kBadHandshake,
                       "first frame must be hello", /*close_after=*/true);
            return;
        }
        WireHello hello;
        try {
            hello = decode_hello(payload);
        } catch (const CodecError& e) {
            send_error(session, 0, WireErrorCode::kBadMessage, e.what(), true);
            return;
        }
        if (hello.codec_version != kCodecVersion) {
            send_error(session, 0, WireErrorCode::kBadHandshake,
                       "codec version " + std::to_string(hello.codec_version) +
                           " != " + std::to_string(kCodecVersion),
                       true);
            return;
        }
        WireHelloAck ack;
        ack.max_frame_bytes = config_.max_frame_bytes;
        ack.server_name = config_.server_name;
        send_frame(session, FrameType::kHelloAck, encode_hello_ack(ack));
        session.state = Session::State::kOpen;
        handshakes_.fetch_add(1, std::memory_order_relaxed);
        return;
    }

    switch (type) {
        case FrameType::kRequest: {
            WireRequest wire;
            try {
                wire = decode_request(payload);
            } catch (const CodecError& e) {
                send_error(session, 0, WireErrorCode::kBadMessage, e.what(), true);
                return;
            }
            try {
                serve::ScheduleRequest request = serve::materialize(wire.trace);
                request.deadline_ms = wire.deadline_ms;
                request.options = wire.options;
                Session::PendingReply reply;
                reply.id = wire.id;
                reply.future = engine_.submit(std::move(request));
                session.pending.push_back(std::move(reply));
                requests_.fetch_add(1, std::memory_order_relaxed);
            } catch (const std::exception& e) {
                // Materialization or pool-handoff failure: request-level
                // error, session stays open.
                send_error(session, wire.id, WireErrorCode::kRequestFailed, e.what(), false);
            }
            return;
        }
        case FrameType::kError:
            // Client-initiated abort: close quietly after flushing.
            session.state = session.outbox.empty() ? Session::State::kClosed
                                                   : Session::State::kClosing;
            return;
        case FrameType::kHello:
        case FrameType::kHelloAck:
        case FrameType::kResponse:
            send_error(session, 0, WireErrorCode::kBadMessage,
                       std::string("unexpected frame type ") + frame_type_name(type),
                       /*close_after=*/true);
            return;
    }
}

void ServeServer::pump_futures(Session& session) {
    for (std::size_t i = 0; i < session.pending.size();) {
        auto& reply = session.pending[i];
        if (reply.future.wait_for(std::chrono::seconds(0)) != std::future_status::ready) {
            ++i;
            continue;
        }
        const std::uint64_t id = reply.id;
        std::future<serve::ServeResult> future = std::move(reply.future);
        session.pending.erase(session.pending.begin() + static_cast<std::ptrdiff_t>(i));
        try {
            const serve::ServeResult result = future.get();
            Session::OutFrame out;
            out.bytes = encode_frame(FrameType::kResponse,
                                     encode_response(make_response(id, result)),
                                     config_.max_frame_bytes);
            out.is_response = true;
            session.outbox.push_back(std::move(out));
        } catch (const std::exception& e) {
            send_error(session, id, WireErrorCode::kRequestFailed, e.what(), false);
        }
    }
}

void ServeServer::send_frame(Session& session, FrameType type, const std::string& payload) {
    Session::OutFrame out;
    out.bytes = encode_frame(type, payload, config_.max_frame_bytes);
    session.outbox.push_back(std::move(out));
}

void ServeServer::send_error(Session& session, std::uint64_t request_id, WireErrorCode code,
                             const std::string& message, bool close_after) {
    WireError err;
    err.request_id = request_id;
    err.code = static_cast<std::uint32_t>(code);
    err.message = message;
    send_frame(session, FrameType::kError, encode_error(err));
    errors_sent_.fetch_add(1, std::memory_order_relaxed);
    if (close_after) session.state = Session::State::kClosing;
}

void ServeServer::flush_session(Session& session) {
    while (!session.outbox.empty()) {
        auto& out = session.outbox.front();
        const long n = write_some(session.fd.get(), out.bytes.data() + out.offset,
                                  out.bytes.size() - out.offset);
        if (n < 0) {
            session.state = Session::State::kClosed;
            return;
        }
        bytes_out_.fetch_add(static_cast<std::uint64_t>(n), std::memory_order_relaxed);
        out.offset += static_cast<std::size_t>(n);
        if (out.offset < out.bytes.size()) return;  // kernel buffer full
        if (out.is_response) responses_.fetch_add(1, std::memory_order_relaxed);
        session.outbox.pop_front();
    }
}

}  // namespace tsched::net
