// Thin POSIX socket helpers shared by the server and client (DESIGN §17).
//
// Dependency-free: <sys/socket.h> and friends only.  Everything here throws
// std::system_error with the failing call's errno, so callers get "bind:
// Address already in use" instead of a silent -1.  The FdHandle is the only
// ownership primitive — one fd, closed exactly once, movable, never copied.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

namespace tsched::net {

/// RAII file descriptor.  -1 means empty.
class FdHandle {
public:
    FdHandle() = default;
    explicit FdHandle(int fd) noexcept : fd_(fd) {}
    ~FdHandle() { reset(); }

    FdHandle(const FdHandle&) = delete;
    FdHandle& operator=(const FdHandle&) = delete;
    FdHandle(FdHandle&& other) noexcept : fd_(other.release()) {}
    FdHandle& operator=(FdHandle&& other) noexcept {
        if (this != &other) {
            reset();
            fd_ = other.release();
        }
        return *this;
    }

    [[nodiscard]] int get() const noexcept { return fd_; }
    [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
    [[nodiscard]] int release() noexcept { return std::exchange(fd_, -1); }
    void reset() noexcept;

private:
    int fd_ = -1;
};

/// A bound, listening TCP socket plus the port it actually landed on
/// (`port` resolves the ephemeral-port case: bind with port 0, read back
/// with getsockname — the flake-proof discovery every script uses).
struct Listener {
    FdHandle fd;
    std::uint16_t port = 0;
};

/// Bind + listen on host:port (port 0 = kernel-assigned ephemeral port).
/// SO_REUSEADDR is set so a restarting server does not trip over
/// TIME_WAIT.  Throws std::system_error on failure.
[[nodiscard]] Listener listen_tcp(const std::string& host, std::uint16_t port, int backlog = 64);

/// Blocking connect to host:port.  Throws std::system_error on failure.
[[nodiscard]] FdHandle connect_tcp(const std::string& host, std::uint16_t port);

/// Switch O_NONBLOCK on.  Throws std::system_error on failure.
void set_nonblocking(int fd);

/// Disable Nagle (TCP_NODELAY): request/response frames are latency-bound
/// and tiny, exactly the workload delayed ACK + Nagle interact badly with.
void set_nodelay(int fd);

/// Nonblocking read into `buffer`.  Returns bytes read (> 0), 0 for EAGAIN
/// (no data right now), or -1 for EOF/connection error (the caller closes).
[[nodiscard]] long read_some(int fd, char* buffer, std::size_t size) noexcept;

/// Nonblocking write of as much of data[offset..] as the kernel accepts.
/// Returns bytes written (>= 0) or -1 for a connection error.
[[nodiscard]] long write_some(int fd, const char* data, std::size_t size) noexcept;

}  // namespace tsched::net
