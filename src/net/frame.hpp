// Wire framing for the tsched serving protocol (DESIGN §17).
//
// Every message on a connection travels inside one length-prefixed binary
// frame:
//
//   offset  size  field
//   0       4     magic 0x464E5354 ("TSNF", little-endian u32)
//   4       1     protocol version (kProtocolVersion)
//   5       1     frame type (FrameType)
//   6       2     reserved, must be zero
//   8       4     payload length in bytes (little-endian u32)
//   12      4     CRC-32 (IEEE, reflected 0xEDB88320) of the payload bytes
//   16      len   payload
//
// All multi-byte header fields are little-endian, matching the canonical
// integer encoding the PR 5 fingerprint contract pinned (util/fingerprint.hpp);
// payload contents are the codec's business (net/codec.hpp).
//
// Decoding is incremental and hostile-input-safe: FrameDecoder::feed()
// appends whatever bytes arrived and parses as many complete frames as the
// buffer holds.  The declared payload length is validated against the
// configured cap *at header-parse time* and the decoder never allocates the
// declared length up front — a 4 GiB length field in a 16-byte datagram
// costs the decoder nothing.  Any malformed header or CRC mismatch moves the
// decoder into a sticky typed error state; the owning session answers with
// one Error frame and closes, and the server stays up (the malformed-frame
// battery in tests/test_net.cpp pins exactly that).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace tsched::net {

inline constexpr std::uint32_t kFrameMagic = 0x464E5354u;  // "TSNF" little-endian
inline constexpr std::uint8_t kProtocolVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 16;
/// Default cap on a single frame's payload; ServerConfig/ClientConfig can
/// lower or raise it, but a decoder never accepts more than it was built
/// with.
inline constexpr std::size_t kDefaultMaxPayloadBytes = 1u << 20;

enum class FrameType : std::uint8_t {
    kHello = 1,     ///< client -> server, first frame on a connection
    kHelloAck = 2,  ///< server -> client, handshake accepted
    kRequest = 3,   ///< client -> server, one ScheduleRequest (codec.hpp)
    kResponse = 4,  ///< server -> client, one ServeResult (codec.hpp)
    kError = 5,     ///< either direction, typed error (codec.hpp)
};

/// True when `value` names a known FrameType.
[[nodiscard]] bool frame_type_known(std::uint8_t value) noexcept;
[[nodiscard]] const char* frame_type_name(FrameType type) noexcept;

/// Why a byte stream stopped being a frame stream.  Stable numbering: these
/// travel inside Error frames (codec.hpp) as the close reason.
enum class FrameError : std::uint8_t {
    kNone = 0,
    kBadMagic = 1,     ///< first four bytes are not "TSNF"
    kBadVersion = 2,   ///< protocol version mismatch
    kBadType = 3,      ///< unknown frame type
    kBadReserved = 4,  ///< reserved header bytes non-zero
    kOversized = 5,    ///< declared payload length above the decoder's cap
    kBadCrc = 6,       ///< payload CRC mismatch (bit rot or truncation)
};

[[nodiscard]] const char* frame_error_name(FrameError error) noexcept;

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over `data`.
[[nodiscard]] std::uint32_t crc32(std::string_view data) noexcept;

struct Frame {
    FrameType type = FrameType::kHello;
    std::string payload;
};

/// Serialize one frame (header + payload).  Throws std::length_error when
/// the payload exceeds `max_payload` — the encoder enforces the same cap the
/// peer's decoder will.
[[nodiscard]] std::string encode_frame(FrameType type, std::string_view payload,
                                       std::size_t max_payload = kDefaultMaxPayloadBytes);

/// Incremental frame parser; see file header for the safety contract.
class FrameDecoder {
public:
    explicit FrameDecoder(std::size_t max_payload = kDefaultMaxPayloadBytes)
        : max_payload_(max_payload) {}

    /// Append received bytes.  No-op once the decoder is in an error state.
    void feed(std::string_view bytes);

    /// Pop the next complete frame, if any.  Returns std::nullopt when more
    /// bytes are needed or the decoder has failed (check error()).
    [[nodiscard]] std::optional<Frame> next();

    /// Sticky: the first malformed header or CRC mismatch latches here and
    /// the decoder ignores everything after it (a corrupt stream has no
    /// trustworthy resynchronization point).
    [[nodiscard]] FrameError error() const noexcept { return error_; }
    [[nodiscard]] bool failed() const noexcept { return error_ != FrameError::kNone; }

    /// Bytes buffered but not yet consumed (diagnostics).
    [[nodiscard]] std::size_t buffered() const noexcept { return buffer_.size() - consumed_; }

private:
    std::size_t max_payload_;
    std::string buffer_;
    std::size_t consumed_ = 0;  ///< prefix of buffer_ already handed out
    FrameError error_ = FrameError::kNone;
};

}  // namespace tsched::net
