#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <system_error>

namespace tsched::net {

namespace {

[[noreturn]] void throw_errno(const char* what) {
    throw std::system_error(errno, std::generic_category(), what);
}

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
        throw std::system_error(EINVAL, std::generic_category(),
                                "inet_pton: bad IPv4 address '" + host + "'");
    return addr;
}

}  // namespace

void FdHandle::reset() noexcept {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

Listener listen_tcp(const std::string& host, std::uint16_t port, int backlog) {
    FdHandle fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid()) throw_errno("socket");
    const int one = 1;
    if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one) != 0)
        throw_errno("setsockopt(SO_REUSEADDR)");
    sockaddr_in addr = make_addr(host, port);
    if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0)
        throw_errno("bind");
    if (::listen(fd.get(), backlog) != 0) throw_errno("listen");
    socklen_t len = sizeof addr;
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&addr), &len) != 0)
        throw_errno("getsockname");
    Listener listener;
    listener.fd = std::move(fd);
    listener.port = ntohs(addr.sin_port);
    return listener;
}

FdHandle connect_tcp(const std::string& host, std::uint16_t port) {
    FdHandle fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid()) throw_errno("socket");
    sockaddr_in addr = make_addr(host, port);
    int rc = 0;
    do {
        rc = ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
    } while (rc != 0 && errno == EINTR);
    if (rc != 0) throw_errno("connect");
    set_nodelay(fd.get());
    return fd;
}

void set_nonblocking(int fd) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0) throw_errno("fcntl(F_GETFL)");
    if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) throw_errno("fcntl(F_SETFL)");
}

void set_nodelay(int fd) {
    const int one = 1;
    // Best effort: TCP_NODELAY can legitimately fail on non-TCP fds in
    // tests; latency tuning must never abort a session.
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

long read_some(int fd, char* buffer, std::size_t size) noexcept {
    while (true) {
        const ssize_t n = ::recv(fd, buffer, size, 0);
        if (n > 0) return static_cast<long>(n);
        if (n == 0) return -1;  // orderly EOF
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return 0;
        return -1;
    }
}

long write_some(int fd, const char* data, std::size_t size) noexcept {
    std::size_t written = 0;
    while (written < size) {
        const ssize_t n = ::send(fd, data + written, size - written, MSG_NOSIGNAL);
        if (n > 0) {
            written += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR) continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        return -1;
    }
    return static_cast<long>(written);
}

}  // namespace tsched::net
