#include "trace/counters.hpp"

#include <cinttypes>
#include <cstdio>

namespace tsched::trace {

namespace {

template <typename Vec>
auto& find_or_create(Vec& entries, std::string_view name) {
    for (auto& [key, value] : entries) {
        if (key == name) return *value;
    }
    entries.emplace_back(std::string(name),
                         std::make_unique<typename Vec::value_type::second_type::element_type>());
    return *entries.back().second;
}

void append_json_string(std::string& out, std::string_view s) {
    out += '"';
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            case '\r': out += "\\r"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    out += '"';
}

}  // namespace

Counter& Registry::counter(std::string_view name) {
    LockGuard lock(mutex_);
    return find_or_create(counters_, name);
}

SpanTimer& Registry::span(std::string_view name) {
    LockGuard lock(mutex_);
    return find_or_create(spans_, name);
}

Snapshot Registry::snapshot() const {
    LockGuard lock(mutex_);
    Snapshot snap;
    snap.counters.reserve(counters_.size());
    for (const auto& [name, counter] : counters_) {
        snap.counters.push_back({name, counter->value()});
    }
    snap.spans.reserve(spans_.size());
    for (const auto& [name, span] : spans_) {
        snap.spans.push_back({name, span->count(), span->total_ns()});
    }
    return snap;
}

void Registry::reset() {
    LockGuard lock(mutex_);
    for (auto& [name, counter] : counters_) counter->reset();
    for (auto& [name, span] : spans_) span->reset();
}

Registry& registry() {
    static Registry instance;
    return instance;
}

Snapshot snapshot_delta(const Snapshot& before, const Snapshot& after) {
    Snapshot delta;
    for (const auto& sample : after.counters) {
        std::uint64_t base = 0;
        for (const auto& prior : before.counters) {
            if (prior.name == sample.name) {
                base = prior.value;
                break;
            }
        }
        if (sample.value > base) delta.counters.push_back({sample.name, sample.value - base});
    }
    for (const auto& sample : after.spans) {
        std::uint64_t base_count = 0;
        std::uint64_t base_ns = 0;
        for (const auto& prior : before.spans) {
            if (prior.name == sample.name) {
                base_count = prior.count;
                base_ns = prior.total_ns;
                break;
            }
        }
        if (sample.count > base_count) {
            delta.spans.push_back(
                {sample.name, sample.count - base_count, sample.total_ns - base_ns});
        }
    }
    return delta;
}

std::string to_json(const Snapshot& snapshot) {
    std::string out = "{\"counters\":{";
    for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
        if (i) out += ',';
        append_json_string(out, snapshot.counters[i].name);
        char buf[32];
        std::snprintf(buf, sizeof(buf), ":%" PRIu64,
                      static_cast<std::uint64_t>(snapshot.counters[i].value));
        out += buf;
    }
    out += "},\"spans\":{";
    for (std::size_t i = 0; i < snapshot.spans.size(); ++i) {
        if (i) out += ',';
        append_json_string(out, snapshot.spans[i].name);
        char buf[96];
        std::snprintf(buf, sizeof(buf), ":{\"count\":%" PRIu64 ",\"total_ms\":%.6f}",
                      static_cast<std::uint64_t>(snapshot.spans[i].count),
                      static_cast<double>(snapshot.spans[i].total_ns) / 1e6);
        out += buf;
    }
    out += "}}";
    return out;
}

}  // namespace tsched::trace
