// Counter and span-timer registry — the quantitative half of the trace
// subsystem (see trace/trace.hpp for the macro front-end).
//
// Counters are named monotonic uint64 accumulators ("eft_evaluations",
// "insertion_probes", ...); span timers aggregate wall-clock durations of
// named phases ("rank/upward", "sim/simulate", ...).  Both live in one
// process-wide registry so any layer — scheduler, simulator, bench harness —
// can contribute without plumbing.  Counter *names are append-only*, like
// the analysis subsystem's TS codes: downstream tooling may key on them.
//
// Hot-path cost: one relaxed atomic add per hit (the macro caches the
// registry lookup in a function-local static).  Registration itself takes a
// mutex and is thread-safe.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/thread_annotations.hpp"

namespace tsched::trace {

class Counter {
public:
    void add(std::uint64_t delta) noexcept { value_.fetch_add(delta, std::memory_order_relaxed); }
    [[nodiscard]] std::uint64_t value() const noexcept {
        return value_.load(std::memory_order_relaxed);
    }
    void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

private:
    std::atomic<std::uint64_t> value_{0};
};

class SpanTimer {
public:
    void add(std::uint64_t ns) noexcept {
        count_.fetch_add(1, std::memory_order_relaxed);
        total_ns_.fetch_add(ns, std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t count() const noexcept {
        return count_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t total_ns() const noexcept {
        return total_ns_.load(std::memory_order_relaxed);
    }
    void reset() noexcept {
        count_.store(0, std::memory_order_relaxed);
        total_ns_.store(0, std::memory_order_relaxed);
    }

private:
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> total_ns_{0};
};

struct CounterSample {
    std::string name;
    std::uint64_t value = 0;
};

struct SpanSample {
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
};

/// A point-in-time copy of every registered counter and span timer, in
/// registration order.
struct Snapshot {
    std::vector<CounterSample> counters;
    std::vector<SpanSample> spans;
};

// Lock discipline: the name->entry tables are GUARDED_BY the registry
// mutex; the Counter/SpanTimer objects they point to are themselves
// relaxed-atomic (hot-path adds never take the lock — the registration
// lookup is cached in a function-local static by the macros).
class Registry {
public:
    /// Find-or-create; the returned reference is stable for the process
    /// lifetime (entries are never removed).
    Counter& counter(std::string_view name) TSCHED_EXCLUDES(mutex_);
    SpanTimer& span(std::string_view name) TSCHED_EXCLUDES(mutex_);

    [[nodiscard]] Snapshot snapshot() const TSCHED_EXCLUDES(mutex_);

    /// Zero every value.  Names stay registered (append-only).
    void reset() TSCHED_EXCLUDES(mutex_);

private:
    mutable Mutex mutex_;
    std::vector<std::pair<std::string, std::unique_ptr<Counter>>> counters_
        TSCHED_GUARDED_BY(mutex_);
    std::vector<std::pair<std::string, std::unique_ptr<SpanTimer>>> spans_
        TSCHED_GUARDED_BY(mutex_);
};

/// The process-wide registry all macros record into.
[[nodiscard]] Registry& registry();

/// after - before, per name: the activity between two snapshots.  Names
/// present only in `after` keep their full value; zero-valued entries are
/// dropped so per-point dumps stay small.
[[nodiscard]] Snapshot snapshot_delta(const Snapshot& before, const Snapshot& after);

/// Render a snapshot as JSON:
///   {"counters": {"name": value, ...},
///    "spans": {"name": {"count": n, "total_ms": t}, ...}}
[[nodiscard]] std::string to_json(const Snapshot& snapshot);

}  // namespace tsched::trace
