// tsched_trace macro front-end: spans and counters that compile to nothing
// when tracing is off.
//
//   TSCHED_SPAN("rank/upward");          // RAII: times the enclosing scope
//   TSCHED_COUNT("eft_evaluations");     // counter += 1
//   TSCHED_COUNT_ADD("oct_cells", n);    // counter += n
//
// Gate: the CMake option TSCHED_TRACE (default ON) defines
// TSCHED_TRACE_ENABLED project-wide.  With the option OFF — the
// configuration benchmark builds use — every macro expands to a no-op and
// instrumented hot paths carry zero cost.  A single translation unit can
// also force the no-op expansion by defining TSCHED_TRACE_FORCE_OFF before
// including this header (the OFF-mode unit test does exactly that).
//
// When enabled, a counter hit costs one relaxed atomic add: the registry
// lookup happens once per call site via a function-local static.  Span
// timers additionally read the steady clock twice per scope.
#pragma once

#include "trace/counters.hpp"

#if defined(TSCHED_TRACE_ENABLED) && !defined(TSCHED_TRACE_FORCE_OFF)
#define TSCHED_TRACE_ON 1
#else
#define TSCHED_TRACE_ON 0
#endif

#if TSCHED_TRACE_ON

#include <chrono>

namespace tsched::trace {

/// RAII scope timer feeding a SpanTimer; spans may nest freely (each scope
/// accumulates into its own named timer).
class ScopedSpan {
public:
    explicit ScopedSpan(SpanTimer& timer) noexcept
        : timer_(timer), start_(std::chrono::steady_clock::now()) {}
    ~ScopedSpan() {
        const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now() - start_)
                            .count();
        timer_.add(static_cast<std::uint64_t>(ns < 0 ? 0 : ns));
    }
    ScopedSpan(const ScopedSpan&) = delete;
    ScopedSpan& operator=(const ScopedSpan&) = delete;

private:
    SpanTimer& timer_;
    std::chrono::steady_clock::time_point start_;
};

}  // namespace tsched::trace

#define TSCHED_TRACE_CONCAT_INNER(a, b) a##b
#define TSCHED_TRACE_CONCAT(a, b) TSCHED_TRACE_CONCAT_INNER(a, b)

#define TSCHED_SPAN(name)                                                      \
    ::tsched::trace::ScopedSpan TSCHED_TRACE_CONCAT(tsched_scoped_span_,       \
                                                    __LINE__)(                 \
        ::tsched::trace::registry().span(name))

#define TSCHED_COUNT_ADD(name, delta)                                          \
    do {                                                                       \
        static ::tsched::trace::Counter& TSCHED_TRACE_CONCAT(tsched_counter_,  \
                                                             __LINE__) =       \
            ::tsched::trace::registry().counter(name);                         \
        TSCHED_TRACE_CONCAT(tsched_counter_, __LINE__)                         \
            .add(static_cast<std::uint64_t>(delta));                           \
    } while (0)

#else  // tracing disabled: all macros are no-ops

#define TSCHED_SPAN(name) static_cast<void>(0)
#define TSCHED_COUNT_ADD(name, delta) static_cast<void>(0)

#endif

#define TSCHED_COUNT(name) TSCHED_COUNT_ADD(name, 1)
