// Structured decision tracing: *why* a scheduler placed each task where it
// did.
//
// A list scheduler evaluates a candidate set (usually one entry per
// processor) for every task and commits the winner.  With a TraceSink
// threaded through Scheduler::schedule_traced(), each commit is recorded as
// a DecisionRecord carrying the task's priority, the full candidate
// evaluation (EST/EFT, any downstream bias such as PEFT/ILS's OCT term, and
// the final selection score), the chosen processor, and a human-readable
// reason.  Dual-pass schedulers (ILS's greedy + OCT modes) label records
// with a pass name and announce the winning pass, so a trace always
// identifies the records that produced the returned schedule.
//
// DecisionTrace is the standard in-memory sink with text ("explain") and
// JSON renderers; tools/tsched_trace exposes it on the command line.
// Sinks are driven from a single scheduler invocation and are not
// thread-safe; use one sink per concurrent schedule() call.
#pragma once

#include <string>
#include <vector>

#include "graph/dag.hpp"
#include "platform/link_model.hpp"  // ProcId (header-only use; no link dependency)

namespace tsched::trace {

/// One processor considered for a task.
struct CandidateEval {
    ProcId proc = kInvalidProc;
    double est = 0.0;       ///< earliest start on this processor
    double eft = 0.0;       ///< earliest finish on this processor
    double oct_bias = 0.0;  ///< downstream bias added to the score (0 = none)
    double score = 0.0;     ///< the quantity the scheduler minimised
};

/// One placement decision.
struct DecisionRecord {
    TaskId task = kInvalidTask;
    double rank = 0.0;  ///< the task's priority when it was selected
    std::vector<CandidateEval> candidates;
    ProcId chosen = kInvalidProc;
    double start = 0.0;   ///< committed start time
    double finish = 0.0;  ///< committed finish time
    std::string reason;   ///< e.g. "min EFT (insertion)"
    std::string pass;     ///< filled by the sink from begin_pass()
};

/// Receiver interface threaded through Scheduler::schedule_traced().
class TraceSink {
public:
    virtual ~TraceSink() = default;

    /// A multi-pass scheduler announces each pass before recording into it.
    virtual void begin_pass(const std::string& pass) { static_cast<void>(pass); }

    /// Announce which pass produced the returned schedule (after the fact).
    virtual void choose_pass(const std::string& pass) { static_cast<void>(pass); }

    /// One committed placement decision.
    virtual void record(DecisionRecord record) = 0;
};

/// In-memory decision trace with explain/text/JSON renderers.
class DecisionTrace final : public TraceSink {
public:
    void begin_pass(const std::string& pass) override;
    void choose_pass(const std::string& pass) override;
    void record(DecisionRecord record) override;

    /// All records, in commit order across every pass.
    [[nodiscard]] const std::vector<DecisionRecord>& records() const noexcept {
        return records_;
    }

    /// Pass that produced the returned schedule ("" for single-pass
    /// schedulers that never called begin_pass/choose_pass).
    [[nodiscard]] const std::string& winning_pass() const noexcept { return winning_pass_; }

    /// Records of the winning pass only — exactly one per task for a
    /// complete trace; these correspond to the schedule the caller received.
    [[nodiscard]] std::vector<const DecisionRecord*> final_records() const;

    /// The winning-pass record for `task`; nullptr when the task was never
    /// recorded.
    [[nodiscard]] const DecisionRecord* find(TaskId task) const;

    /// Multi-line answer to "why did `task` land on its processor?".
    [[nodiscard]] std::string explain(TaskId task) const;

    /// explain() for every task of the winning pass, in commit order.
    [[nodiscard]] std::string render_text() const;

    /// Machine-readable dump of every record (all passes):
    ///   {"winning_pass": "...", "decisions": [...]}.
    [[nodiscard]] std::string render_json() const;

private:
    std::vector<DecisionRecord> records_;
    std::string current_pass_;
    std::string winning_pass_;
};

}  // namespace tsched::trace
