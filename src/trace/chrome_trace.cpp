#include "trace/chrome_trace.hpp"

#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "sim/contention.hpp"
#include "sim/event_sim.hpp"
#include "sim/placement_table.hpp"

namespace tsched::trace {

namespace {

constexpr int kExecPid = 0;
constexpr int kCommPid = 1;
constexpr int kFaultPid = 2;

std::string num(double v) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

/// Escape task names coming from user-supplied DAGs for embedding in JSON
/// string literals.
std::string esc(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) >= 0x20) out += c;
        }
    }
    return out;
}

class EventWriter {
public:
    void metadata(int pid, int tid, bool thread, const std::string& name) {
        begin();
        out_ += "{\"name\":\"";
        out_ += thread ? "thread_name" : "process_name";
        out_ += "\",\"ph\":\"M\",\"pid\":" + std::to_string(pid);
        if (thread) out_ += ",\"tid\":" + std::to_string(tid);
        out_ += ",\"args\":{\"name\":\"" + name + "\"}}";
    }

    void complete(const std::string& name, const char* cat, double ts, double dur, int pid,
                  int tid, const std::string& args_json) {
        begin();
        out_ += "{\"name\":\"" + name + "\",\"cat\":\"" + cat + "\",\"ph\":\"X\",\"ts\":" +
                num(ts) + ",\"dur\":" + num(dur) + ",\"pid\":" + std::to_string(pid) +
                ",\"tid\":" + std::to_string(tid) + ",\"args\":" + args_json + "}";
    }

    void instant(const std::string& name, const char* cat, double ts, int pid, int tid,
                 const std::string& args_json) {
        begin();
        out_ += "{\"name\":\"" + name + "\",\"cat\":\"" + cat +
                "\",\"ph\":\"i\",\"s\":\"g\",\"ts\":" + num(ts) +
                ",\"pid\":" + std::to_string(pid) + ",\"tid\":" + std::to_string(tid) +
                ",\"args\":" + args_json + "}";
    }

    [[nodiscard]] std::string document() && {
        return "{\"traceEvents\":[" + std::move(out_) + "],\"displayTimeUnit\":\"ms\"}";
    }

private:
    void begin() {
        if (!out_.empty()) out_ += ",\n";
    }
    std::string out_;
};

std::string task_label(TaskId v, const Dag* dag) {
    if (dag != nullptr && !dag->name(v).empty()) return esc(dag->name(v));
    return "T" + std::to_string(v);
}

void write_track_names(EventWriter& writer, std::size_t procs, bool comm) {
    writer.metadata(kExecPid, 0, false, "execution");
    for (std::size_t p = 0; p < procs; ++p) {
        writer.metadata(kExecPid, static_cast<int>(p), true, "P" + std::to_string(p));
    }
    if (comm) {
        writer.metadata(kCommPid, 0, false, "communication");
        for (std::size_t p = 0; p < procs; ++p) {
            writer.metadata(kCommPid, static_cast<int>(p), true,
                            "inbound P" + std::to_string(p));
        }
    }
}

/// One complete event per placement.  `finish_times` (optional) overrides
/// the planned times: finish from the vector, start = finish - exec duration
/// under `problem`'s cost model.
void write_exec_events(EventWriter& writer, const Schedule& schedule, const Dag* dag,
                       const Problem* problem, const std::vector<double>* finish_times) {
    std::size_t index = 0;
    for (std::size_t v = 0; v < schedule.num_tasks(); ++v) {
        const auto places = schedule.placements(static_cast<TaskId>(v));
        bool primary = true;
        for (const Placement& pl : places) {
            double start = pl.start;
            double finish = pl.finish;
            if (finish_times != nullptr && problem != nullptr) {
                finish = (*finish_times)[index];
                start = finish - problem->exec_time(pl.task, pl.proc);
            }
            std::string args = "{\"task\":" + std::to_string(pl.task) +
                               ",\"start\":" + num(start) + ",\"finish\":" + num(finish) +
                               ",\"duplicate\":" + (primary ? "false" : "true") + "}";
            writer.complete(task_label(pl.task, dag) + (primary ? "" : " (dup)"), "exec",
                            start, finish - start, kExecPid, static_cast<int>(pl.proc),
                            args);
            primary = false;
            ++index;
        }
    }
}

/// Nominal (contention-free) transfers: for every primary consumer and each
/// of its input edges, the producer instance with the earliest arrival; a
/// remote winner becomes one event on the consumer processor's inbound
/// track.  `finish_times` (optional) swaps in simulator-derived producer
/// finishes and consumer placement times.
void write_nominal_comm_events(EventWriter& writer, const Schedule& schedule,
                               const Problem& problem,
                               const std::vector<double>* finish_times) {
    const Dag& dag = problem.dag();
    const LinkModel& links = problem.machine().links();
    const sim::PlacementTable table = sim::build_placement_table(schedule);

    auto finish_of = [&](std::size_t entry_index) {
        return finish_times != nullptr ? (*finish_times)[entry_index]
                                       : table.entries[entry_index].planned.finish;
    };

    for (std::size_t v = 0; v < schedule.num_tasks(); ++v) {
        const ProcId to = table.entries[table.task_first[v]].planned.proc;  // primary
        for (const AdjEdge& e : dag.predecessors(static_cast<TaskId>(v))) {
            const auto u = static_cast<std::size_t>(e.task);
            double best_arrival = std::numeric_limits<double>::infinity();
            double best_finish = 0.0;
            ProcId best_from = to;
            for (std::size_t i = table.task_first[u]; i < table.task_first[u + 1]; ++i) {
                const ProcId from = table.entries[i].planned.proc;
                const double arrival = finish_of(i) + links.comm_time(e.data, from, to);
                if (arrival < best_arrival) {
                    best_arrival = arrival;
                    best_finish = finish_of(i);
                    best_from = from;
                }
            }
            if (best_from == to) continue;  // served locally
            std::string args = "{\"producer\":" + std::to_string(e.task) +
                               ",\"consumer\":" + std::to_string(v) +
                               ",\"from\":" + std::to_string(best_from) +
                               ",\"to\":" + std::to_string(to) + ",\"data\":" + num(e.data) +
                               "}";
            writer.complete(task_label(e.task, &dag) + "\\u2192" +
                                task_label(static_cast<TaskId>(v), &dag),
                            "comm", best_finish, best_arrival - best_finish, kCommPid,
                            static_cast<int>(to), args);
        }
    }
}

void write_contended_comm_events(EventWriter& writer, const Dag& dag,
                                 const std::vector<sim::Transfer>& transfers) {
    for (const sim::Transfer& t : transfers) {
        std::string args = "{\"producer\":" + std::to_string(t.producer) +
                           ",\"consumer\":" + std::to_string(t.consumer) +
                           ",\"from\":" + std::to_string(t.from) +
                           ",\"to\":" + std::to_string(t.to) + ",\"data\":" + num(t.data) +
                           "}";
        writer.complete(task_label(t.producer, &dag) + "\\u2192" + task_label(t.consumer, &dag),
                        "comm", t.start, t.duration(), kCommPid, static_cast<int>(t.to),
                        args);
    }
}

}  // namespace

const char* trace_mode_name(TraceMode mode) noexcept {
    switch (mode) {
        case TraceMode::kPlanned: return "planned";
        case TraceMode::kSimulated: return "sim";
        case TraceMode::kContended: return "contended";
    }
    return "?";
}

std::string chrome_trace_json(const Schedule& schedule) {
    EventWriter writer;
    write_track_names(writer, schedule.num_procs(), /*comm=*/false);
    write_exec_events(writer, schedule, nullptr, nullptr, nullptr);
    return std::move(writer).document();
}

std::string chrome_trace_json(const sim::FaultReport& report, const Problem& problem) {
    EventWriter writer;
    const Schedule& schedule = report.repaired;
    write_track_names(writer, schedule.num_procs(), /*comm=*/true);
    writer.metadata(kFaultPid, 0, false, "faults");
    for (std::size_t p = 0; p < schedule.num_procs(); ++p) {
        writer.metadata(kFaultPid, static_cast<int>(p), true, "P" + std::to_string(p));
    }
    const Dag* dag = &problem.dag();
    write_exec_events(writer, schedule, dag, &problem, &report.sim.finish_times);
    write_nominal_comm_events(writer, schedule, problem, &report.sim.finish_times);
    for (const sim::FaultEvent& ev : report.events) {
        std::string args = "{\"kind\":\"" + std::string(sim::fault_event_kind_name(ev.kind)) +
                           "\",\"time\":" + num(ev.time);
        if (ev.task != kInvalidTask) args += ",\"task\":" + std::to_string(ev.task);
        args += "}";
        std::string name{sim::fault_event_kind_name(ev.kind)};
        if (ev.task != kInvalidTask) name += " " + task_label(ev.task, dag);
        const int tid = ev.proc != kInvalidProc ? static_cast<int>(ev.proc) : 0;
        writer.instant(name, "fault", ev.time, kFaultPid, tid, args);
    }
    return std::move(writer).document();
}

std::string chrome_trace_json(const Schedule& schedule, const Problem& problem,
                              TraceMode mode) {
    EventWriter writer;
    write_track_names(writer, schedule.num_procs(), /*comm=*/true);
    const Dag* dag = &problem.dag();
    switch (mode) {
        case TraceMode::kPlanned:
            write_exec_events(writer, schedule, dag, &problem, nullptr);
            write_nominal_comm_events(writer, schedule, problem, nullptr);
            break;
        case TraceMode::kSimulated: {
            const sim::SimResult sim = sim::simulate(schedule, problem);
            write_exec_events(writer, schedule, dag, &problem, &sim.finish_times);
            write_nominal_comm_events(writer, schedule, problem, &sim.finish_times);
            break;
        }
        case TraceMode::kContended: {
            const sim::ContentionResult run = sim::simulate_contended(schedule, problem);
            write_exec_events(writer, schedule, dag, &problem, &run.finish_times);
            write_contended_comm_events(writer, *dag, run.transfer_log);
            break;
        }
    }
    return std::move(writer).document();
}

}  // namespace tsched::trace
