// Chrome trace_event JSON export — load a schedule (or a simulator replay of
// one) into chrome://tracing or https://ui.perfetto.dev and scrub through it.
//
// The export draws one "execution" track per processor (pid 0, tid = proc,
// one complete event per placement, duplicates flagged in args) and, when
// the problem is available, one "communication" track per destination
// processor (pid 1) with a complete event per cross-processor transfer.
// Model time units are emitted directly as trace-event microseconds — the
// absolute scale is arbitrary, only ratios matter.
//
// Three time bases:
//   kPlanned    — the schedule's own start/finish times, transfers at their
//                 nominal (contention-free) windows;
//   kSimulated  — times re-derived by sim::simulate() (identical to planned
//                 for a valid schedule; differs when debugging one that
//                 is not);
//   kContended  — times from sim::simulate_contended(): execution shifts
//                 and the transfer windows are the one-port model's actual
//                 port reservations.
// A faulty run (sim::simulate_faulty) adds a third process (pid 2): one
// instant event per fault-timeline entry — crashes, transient failures,
// repairs, migrations, re-executions — on the affected processor's row, over
// the repaired schedule's realised execution tracks.
#pragma once

#include <string>

#include "platform/problem.hpp"
#include "sched/schedule.hpp"
#include "sim/faults.hpp"

namespace tsched::trace {

enum class TraceMode { kPlanned, kSimulated, kContended };

[[nodiscard]] const char* trace_mode_name(TraceMode mode) noexcept;

/// Execution tracks only — all that can be drawn without the task graph.
[[nodiscard]] std::string chrome_trace_json(const Schedule& schedule);

/// Execution + communication tracks under the requested time base.
/// kSimulated/kContended run the corresponding simulator internally and may
/// throw what it throws (std::invalid_argument on structurally broken
/// schedules).
[[nodiscard]] std::string chrome_trace_json(const Schedule& schedule, const Problem& problem,
                                            TraceMode mode = TraceMode::kPlanned);

/// A faulty run: the repaired schedule's realised execution and
/// communication tracks plus the fault timeline (pid 2).
[[nodiscard]] std::string chrome_trace_json(const sim::FaultReport& report,
                                            const Problem& problem);

}  // namespace tsched::trace
