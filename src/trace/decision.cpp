#include "trace/decision.hpp"

#include <cstdio>
#include <sstream>

namespace tsched::trace {

namespace {

std::string fmt(double v) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.4g", v);
    return buf;
}

void append_record_json(std::ostringstream& os, const DecisionRecord& r) {
    os << "{\"task\":" << r.task << ",\"pass\":\"" << r.pass << "\",\"rank\":" << fmt(r.rank)
       << ",\"chosen\":" << r.chosen << ",\"start\":" << fmt(r.start)
       << ",\"finish\":" << fmt(r.finish) << ",\"reason\":\"" << r.reason
       << "\",\"candidates\":[";
    for (std::size_t i = 0; i < r.candidates.size(); ++i) {
        const CandidateEval& c = r.candidates[i];
        if (i) os << ',';
        os << "{\"proc\":" << c.proc << ",\"est\":" << fmt(c.est) << ",\"eft\":" << fmt(c.eft)
           << ",\"oct_bias\":" << fmt(c.oct_bias) << ",\"score\":" << fmt(c.score) << '}';
    }
    os << "]}";
}

}  // namespace

void DecisionTrace::begin_pass(const std::string& pass) { current_pass_ = pass; }

void DecisionTrace::choose_pass(const std::string& pass) { winning_pass_ = pass; }

void DecisionTrace::record(DecisionRecord record) {
    if (record.pass.empty()) record.pass = current_pass_;
    records_.push_back(std::move(record));
}

std::vector<const DecisionRecord*> DecisionTrace::final_records() const {
    std::vector<const DecisionRecord*> out;
    out.reserve(records_.size());
    for (const DecisionRecord& r : records_) {
        if (r.pass == winning_pass_) out.push_back(&r);
    }
    return out;
}

const DecisionRecord* DecisionTrace::find(TaskId task) const {
    for (const DecisionRecord& r : records_) {
        if (r.task == task && r.pass == winning_pass_) return &r;
    }
    return nullptr;
}

std::string DecisionTrace::explain(TaskId task) const {
    const DecisionRecord* r = find(task);
    if (r == nullptr) {
        return "task " + std::to_string(task) + ": no decision recorded\n";
    }
    std::ostringstream os;
    os << "task " << r->task << " (rank " << fmt(r->rank);
    if (!r->pass.empty()) os << ", pass " << r->pass;
    os << "): chosen P" << r->chosen << " [start " << fmt(r->start) << ", finish "
       << fmt(r->finish) << "] — " << r->reason << '\n';
    for (const CandidateEval& c : r->candidates) {
        os << (c.proc == r->chosen ? "  * " : "    ") << 'P' << c.proc << ": est " << fmt(c.est)
           << "  eft " << fmt(c.eft);
        if (c.oct_bias != 0.0) os << "  oct +" << fmt(c.oct_bias);
        os << "  score " << fmt(c.score) << '\n';
    }
    return os.str();
}

std::string DecisionTrace::render_text() const {
    std::string out;
    for (const DecisionRecord* r : final_records()) out += explain(r->task);
    return out;
}

std::string DecisionTrace::render_json() const {
    std::ostringstream os;
    os << "{\"winning_pass\":\"" << winning_pass_ << "\",\"decisions\":[";
    for (std::size_t i = 0; i < records_.size(); ++i) {
        if (i) os << ',';
        append_record_json(os, records_[i]);
    }
    os << "]}";
    return os.str();
}

}  // namespace tsched::trace
