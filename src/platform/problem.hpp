// Problem: the complete input a static scheduler consumes — task graph,
// machine, and execution-cost matrix — plus the derived quantities the
// HEFT-family heuristics query constantly (mean execution costs, mean
// communication costs per edge, critical-path lower bound).
//
// Problem shares ownership of its three components so instances are cheap to
// copy into parallel experiment workers.
#pragma once

#include <memory>
#include <vector>

#include "graph/dag.hpp"
#include "platform/cost_matrix.hpp"
#include "platform/machine.hpp"

namespace tsched {

class Problem {
public:
    Problem(std::shared_ptr<const Dag> dag, std::shared_ptr<const Machine> machine,
            std::shared_ptr<const CostMatrix> costs);

    /// Convenience constructor that copies the inputs into shared state.
    Problem(Dag dag, Machine machine, CostMatrix costs);

    [[nodiscard]] const Dag& dag() const noexcept { return *dag_; }
    [[nodiscard]] const Machine& machine() const noexcept { return *machine_; }
    [[nodiscard]] const CostMatrix& costs() const noexcept { return *costs_; }

    [[nodiscard]] std::size_t num_tasks() const noexcept { return dag_->num_tasks(); }
    [[nodiscard]] std::size_t num_procs() const noexcept { return machine_->num_procs(); }

    /// Execution time of task v on processor p.
    [[nodiscard]] double exec_time(TaskId v, ProcId p) const { return (*costs_)(v, p); }
    /// Mean execution time of v across processors (HEFT's w̄).
    [[nodiscard]] double mean_exec(TaskId v) const { return costs_->mean(v); }

    /// Communication time of edge u -> v when placed on (p, q); 0 when p==q.
    [[nodiscard]] double comm_time(TaskId u, TaskId v, ProcId p, ProcId q) const;
    /// Same but with the edge's data volume already known (avoids a lookup).
    [[nodiscard]] double comm_time_data(double data, ProcId p, ProcId q) const {
        return machine_->links().comm_time(data, p, q);
    }

    /// Mean communication time of edge u -> v over all distinct processor
    /// pairs (HEFT's c̄); cached per edge on first use.
    [[nodiscard]] double mean_comm(TaskId u, TaskId v) const;
    [[nodiscard]] double mean_comm_data(double data) const {
        return machine_->links().mean_comm_time(data, num_procs());
    }

    /// Communication-to-computation ratio actually realised by this problem:
    /// (mean comm over edges) / (mean exec over tasks).
    [[nodiscard]] double realized_ccr() const;

    /// Communication-free critical path using per-task *minimum* execution
    /// times: the classic SLR denominator and an absolute makespan lower
    /// bound.
    [[nodiscard]] double cp_lower_bound() const;

    /// The tasks of one critical path under mean execution + mean
    /// communication costs (used by CPOP and for diagnostics).
    [[nodiscard]] std::vector<TaskId> mean_critical_path() const;

private:
    std::shared_ptr<const Dag> dag_;
    std::shared_ptr<const Machine> machine_;
    std::shared_ptr<const CostMatrix> costs_;
    mutable double cached_cp_lower_bound_ = -1.0;
};

}  // namespace tsched
