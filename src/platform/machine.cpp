#include "platform/machine.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace tsched {

Machine::Machine(std::vector<double> speeds, LinkModelPtr links)
    : speeds_(std::move(speeds)), links_(std::move(links)) {
    if (speeds_.empty()) throw std::invalid_argument("Machine: need at least one processor");
    if (!links_) throw std::invalid_argument("Machine: link model must not be null");
    for (const double s : speeds_) {
        if (!(s > 0.0) || !std::isfinite(s)) {
            throw std::invalid_argument("Machine: speeds must be finite and > 0");
        }
    }
}

Machine Machine::homogeneous(std::size_t p, LinkModelPtr links) {
    return Machine(std::vector<double>(p, 1.0), std::move(links));
}

Machine Machine::heterogeneous(std::size_t p, double spread, LinkModelPtr links) {
    if (p == 0) throw std::invalid_argument("Machine::heterogeneous: p must be > 0");
    if (!(spread >= 0.0) || spread >= 2.0) {
        throw std::invalid_argument("Machine::heterogeneous: spread must be in [0, 2)");
    }
    std::vector<double> speeds(p);
    for (std::size_t i = 0; i < p; ++i) {
        const double frac = p == 1 ? 0.5 : static_cast<double>(i) / static_cast<double>(p - 1);
        speeds[i] = 1.0 - spread / 2.0 + spread * frac;
    }
    return Machine(std::move(speeds), std::move(links));
}

double Machine::speed(ProcId p) const {
    if (p < 0 || static_cast<std::size_t>(p) >= speeds_.size()) {
        throw std::out_of_range("Machine::speed: processor out of range");
    }
    return speeds_[static_cast<std::size_t>(p)];
}

bool Machine::is_homogeneous() const noexcept {
    for (const double s : speeds_) {
        if (s != speeds_.front()) return false;
    }
    return true;
}

std::string Machine::describe() const {
    std::ostringstream os;
    os << num_procs() << " procs, " << (is_homogeneous() ? "homogeneous" : "heterogeneous")
       << ", links=" << links_->describe();
    return os.str();
}

}  // namespace tsched
