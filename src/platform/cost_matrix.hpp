// Per-task, per-processor execution-time matrix W (the HEFT "computation
// cost matrix").  Row v holds w(v, p) for every processor p.
//
// Two construction styles:
//   * from_speeds — consistent (related-machines) costs w(v,p) = work/speed;
//   * explicit matrix — arbitrary (unrelated-machines) costs, e.g. the
//     beta-heterogeneity randomization done by workload::make_cost_matrix.
#pragma once

#include <vector>

#include "graph/dag.hpp"
#include "platform/machine.hpp"

namespace tsched {

class CostMatrix {
public:
    /// Explicit matrix; `costs` is row-major (num_tasks x num_procs), every
    /// entry finite and > 0.
    CostMatrix(std::size_t num_tasks, std::size_t num_procs, std::vector<double> costs);

    /// Consistent costs derived from the machine's speeds.
    [[nodiscard]] static CostMatrix from_speeds(const Dag& dag, const Machine& machine);

    /// Identical cost (the task's work) on every processor.
    [[nodiscard]] static CostMatrix uniform(const Dag& dag, std::size_t num_procs);

    [[nodiscard]] std::size_t num_tasks() const noexcept { return num_tasks_; }
    [[nodiscard]] std::size_t num_procs() const noexcept { return num_procs_; }

    [[nodiscard]] double operator()(TaskId v, ProcId p) const {
        return costs_[index(v, p)];
    }
    void set(TaskId v, ProcId p, double cost);

    /// Mean / min / max of row v across processors (precomputed).
    [[nodiscard]] double mean(TaskId v) const;
    [[nodiscard]] double min(TaskId v) const;
    [[nodiscard]] double max(TaskId v) const;
    /// Sample standard deviation of row v (0 for a single processor).
    [[nodiscard]] double stddev(TaskId v) const;
    /// Median of row v.
    [[nodiscard]] double median(TaskId v) const;

    /// Processor with the smallest cost for v (lowest id wins ties).
    [[nodiscard]] ProcId fastest_proc(TaskId v) const;

    /// Total work of the whole graph on processor p (serial execution time).
    [[nodiscard]] double serial_time(ProcId p) const;
    /// min over p of serial_time(p) — the speedup baseline of the literature.
    [[nodiscard]] double best_serial_time() const;

    /// True when every row is constant (homogeneous execution behaviour).
    [[nodiscard]] bool is_homogeneous() const noexcept;

private:
    // Inline: operator() is the innermost call of every EFT evaluation, and
    // an out-of-line index() showed up as a real call in the schedulers'
    // profiles (the checks themselves predict perfectly).
    [[nodiscard]] std::size_t index(TaskId v, ProcId p) const {
        if (v < 0 || static_cast<std::size_t>(v) >= num_tasks_) {
            throw std::out_of_range("CostMatrix: task out of range");
        }
        if (p < 0 || static_cast<std::size_t>(p) >= num_procs_) {
            throw std::out_of_range("CostMatrix: processor out of range");
        }
        return static_cast<std::size_t>(v) * num_procs_ + static_cast<std::size_t>(p);
    }
    void recompute_row_stats();

    std::size_t num_tasks_;
    std::size_t num_procs_;
    std::vector<double> costs_;        // row-major
    std::vector<double> row_mean_;
    std::vector<double> row_min_;
    std::vector<double> row_max_;
    std::vector<double> row_stddev_;
};

}  // namespace tsched
