// Machine description: a set of processors with relative speeds plus the
// interconnect.  A Machine is DAG-independent; binding a Dag's work amounts
// to concrete per-processor execution times happens in CostMatrix.
#pragma once

#include <string>
#include <vector>

#include "platform/link_model.hpp"

namespace tsched {

class Machine {
public:
    /// `speeds[p]` > 0 is the relative speed of processor p: a task with
    /// work `w` takes `w / speeds[p]` time units on p when costs are derived
    /// from speeds ("consistent"/related heterogeneity).
    Machine(std::vector<double> speeds, LinkModelPtr links);

    /// P identical unit-speed processors.
    [[nodiscard]] static Machine homogeneous(std::size_t p, LinkModelPtr links);

    /// P processors with speeds spread uniformly in
    /// [1 - spread/2, 1 + spread/2] deterministically (evenly spaced), so a
    /// given (p, spread) always describes the same machine.
    [[nodiscard]] static Machine heterogeneous(std::size_t p, double spread, LinkModelPtr links);

    [[nodiscard]] std::size_t num_procs() const noexcept { return speeds_.size(); }
    [[nodiscard]] double speed(ProcId p) const;
    [[nodiscard]] const std::vector<double>& speeds() const noexcept { return speeds_; }
    [[nodiscard]] const LinkModel& links() const noexcept { return *links_; }
    [[nodiscard]] const LinkModelPtr& links_ptr() const noexcept { return links_; }

    /// True when all speeds are equal (the "homogeneous systems" case).
    [[nodiscard]] bool is_homogeneous() const noexcept;

    [[nodiscard]] std::string describe() const;

private:
    std::vector<double> speeds_;
    LinkModelPtr links_;
};

}  // namespace tsched
