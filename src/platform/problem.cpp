#include "platform/problem.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/algorithms.hpp"

namespace tsched {

Problem::Problem(std::shared_ptr<const Dag> dag, std::shared_ptr<const Machine> machine,
                 std::shared_ptr<const CostMatrix> costs)
    : dag_(std::move(dag)), machine_(std::move(machine)), costs_(std::move(costs)) {
    if (!dag_ || !machine_ || !costs_) {
        throw std::invalid_argument("Problem: components must not be null");
    }
    if (costs_->num_tasks() != dag_->num_tasks()) {
        throw std::invalid_argument("Problem: cost matrix rows != task count");
    }
    if (costs_->num_procs() != machine_->num_procs()) {
        throw std::invalid_argument("Problem: cost matrix columns != processor count");
    }
}

Problem::Problem(Dag dag, Machine machine, CostMatrix costs)
    : Problem(std::make_shared<const Dag>(std::move(dag)),
              std::make_shared<const Machine>(std::move(machine)),
              std::make_shared<const CostMatrix>(std::move(costs))) {}

double Problem::comm_time(TaskId u, TaskId v, ProcId p, ProcId q) const {
    if (p == q) return 0.0;
    return machine_->links().comm_time(dag_->edge_data(u, v), p, q);
}

double Problem::mean_comm(TaskId u, TaskId v) const {
    return mean_comm_data(dag_->edge_data(u, v));
}

double Problem::realized_ccr() const {
    if (dag_->num_tasks() == 0) return 0.0;
    double exec_sum = 0.0;
    for (std::size_t v = 0; v < dag_->num_tasks(); ++v) {
        exec_sum += costs_->mean(static_cast<TaskId>(v));
    }
    const double exec_mean = exec_sum / static_cast<double>(dag_->num_tasks());
    if (dag_->num_edges() == 0 || exec_mean <= 0.0) return 0.0;
    double comm_sum = 0.0;
    for (std::size_t u = 0; u < dag_->num_tasks(); ++u) {
        for (const AdjEdge& e : dag_->successors(static_cast<TaskId>(u))) {
            comm_sum += mean_comm_data(e.data);
        }
    }
    const double comm_mean = comm_sum / static_cast<double>(dag_->num_edges());
    return comm_mean / exec_mean;
}

double Problem::cp_lower_bound() const {
    if (cached_cp_lower_bound_ >= 0.0) return cached_cp_lower_bound_;
    // Longest path over min execution costs, ignoring communication — the
    // standard SLR denominator (Topcuoglu et al.).
    const std::size_t n = dag_->num_tasks();
    std::vector<double> dist(n, 0.0);
    double best = 0.0;
    const auto order = topological_order(*dag_);
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
        const TaskId v = *it;
        double succ_best = 0.0;
        for (const AdjEdge& e : dag_->successors(v)) {
            succ_best = std::max(succ_best, dist[static_cast<std::size_t>(e.task)]);
        }
        dist[static_cast<std::size_t>(v)] = costs_->min(v) + succ_best;
        best = std::max(best, dist[static_cast<std::size_t>(v)]);
    }
    cached_cp_lower_bound_ = best;
    return best;
}

std::vector<TaskId> Problem::mean_critical_path() const {
    // Longest path under mean execution + mean communication costs.
    const std::size_t n = dag_->num_tasks();
    std::vector<double> dist(n, 0.0);
    std::vector<TaskId> next(n, kInvalidTask);
    const auto order = topological_order(*dag_);
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
        const TaskId v = *it;
        double best = 0.0;
        TaskId best_next = kInvalidTask;
        for (const AdjEdge& e : dag_->successors(v)) {
            const double via = mean_comm_data(e.data) + dist[static_cast<std::size_t>(e.task)];
            if (via > best) {
                best = via;
                best_next = e.task;
            }
        }
        dist[static_cast<std::size_t>(v)] = costs_->mean(v) + best;
        next[static_cast<std::size_t>(v)] = best_next;
    }
    if (n == 0) return {};
    TaskId start = 0;
    for (std::size_t v = 1; v < n; ++v) {
        if (dist[v] > dist[static_cast<std::size_t>(start)]) start = static_cast<TaskId>(v);
    }
    std::vector<TaskId> path;
    for (TaskId v = start; v != kInvalidTask; v = next[static_cast<std::size_t>(v)]) {
        path.push_back(v);
    }
    return path;
}

}  // namespace tsched
