// Platform persistence.
//
// TSP ("task scheduling platform") text format — round-trips exactly, so the
// machine + cost matrix behind a schedule can be archived next to its TSG
// graph and TSS schedule and re-validated later (this is what `tsched_lint`
// consumes):
//   tsp <num_procs> <num_tasks>
//   s <proc> <speed>                      # one line per processor
//   link uniform <latency> <bandwidth>    # interconnect (uniform crossbar)
//   w <task> <c_0> ... <c_{P-1}>          # one cost row per task
//
// Only the uniform (crossbar) link model is serializable — it is the model
// of every HEFT-family evaluation; write_tsp throws std::invalid_argument
// for other models.
#pragma once

#include <iosfwd>
#include <string>

#include "platform/cost_matrix.hpp"
#include "platform/machine.hpp"

namespace tsched {

/// A parsed TSP document: the machine and the execution-cost matrix.
struct PlatformSpec {
    Machine machine;
    CostMatrix costs;
};

void write_tsp(std::ostream& os, const Machine& machine, const CostMatrix& costs);
[[nodiscard]] std::string to_tsp(const Machine& machine, const CostMatrix& costs);

/// Parse a TSP document; throws std::runtime_error with a line-numbered
/// message on malformed input.
[[nodiscard]] PlatformSpec read_tsp(std::istream& is);
[[nodiscard]] PlatformSpec read_tsp_string(const std::string& text);

void save_tsp(const std::string& path, const Machine& machine, const CostMatrix& costs);
[[nodiscard]] PlatformSpec load_tsp(const std::string& path);

}  // namespace tsched
