#include "platform/cost_matrix.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace tsched {

CostMatrix::CostMatrix(std::size_t num_tasks, std::size_t num_procs, std::vector<double> costs)
    : num_tasks_(num_tasks), num_procs_(num_procs), costs_(std::move(costs)) {
    if (num_procs_ == 0) throw std::invalid_argument("CostMatrix: need at least one processor");
    if (costs_.size() != num_tasks_ * num_procs_) {
        throw std::invalid_argument("CostMatrix: size mismatch");
    }
    for (const double c : costs_) {
        if (!(c > 0.0) || !std::isfinite(c)) {
            throw std::invalid_argument("CostMatrix: costs must be finite and > 0");
        }
    }
    recompute_row_stats();
}

CostMatrix CostMatrix::from_speeds(const Dag& dag, const Machine& machine) {
    const std::size_t n = dag.num_tasks();
    const std::size_t p = machine.num_procs();
    std::vector<double> costs(n * p);
    for (std::size_t v = 0; v < n; ++v) {
        const double work = std::max(dag.work(static_cast<TaskId>(v)),
                                     std::numeric_limits<double>::min());
        for (std::size_t q = 0; q < p; ++q) {
            costs[v * p + q] = work / machine.speed(static_cast<ProcId>(q));
        }
    }
    return CostMatrix(n, p, std::move(costs));
}

CostMatrix CostMatrix::uniform(const Dag& dag, std::size_t num_procs) {
    const std::size_t n = dag.num_tasks();
    std::vector<double> costs(n * num_procs);
    for (std::size_t v = 0; v < n; ++v) {
        const double work = std::max(dag.work(static_cast<TaskId>(v)),
                                     std::numeric_limits<double>::min());
        for (std::size_t q = 0; q < num_procs; ++q) costs[v * num_procs + q] = work;
    }
    return CostMatrix(n, num_procs, std::move(costs));
}

void CostMatrix::set(TaskId v, ProcId p, double cost) {
    if (!(cost > 0.0) || !std::isfinite(cost)) {
        throw std::invalid_argument("CostMatrix::set: cost must be finite and > 0");
    }
    costs_[index(v, p)] = cost;
    recompute_row_stats();
}

void CostMatrix::recompute_row_stats() {
    row_mean_.assign(num_tasks_, 0.0);
    row_min_.assign(num_tasks_, 0.0);
    row_max_.assign(num_tasks_, 0.0);
    row_stddev_.assign(num_tasks_, 0.0);
    for (std::size_t v = 0; v < num_tasks_; ++v) {
        double sum = 0.0;
        double lo = std::numeric_limits<double>::infinity();
        double hi = -std::numeric_limits<double>::infinity();
        for (std::size_t p = 0; p < num_procs_; ++p) {
            const double c = costs_[v * num_procs_ + p];
            sum += c;
            lo = std::min(lo, c);
            hi = std::max(hi, c);
        }
        const double mean = sum / static_cast<double>(num_procs_);
        double m2 = 0.0;
        for (std::size_t p = 0; p < num_procs_; ++p) {
            const double d = costs_[v * num_procs_ + p] - mean;
            m2 += d * d;
        }
        row_mean_[v] = mean;
        row_min_[v] = lo;
        row_max_[v] = hi;
        row_stddev_[v] =
            num_procs_ > 1 ? std::sqrt(m2 / static_cast<double>(num_procs_ - 1)) : 0.0;
    }
}

namespace {
std::size_t check_task(TaskId v, std::size_t num_tasks) {
    if (v < 0 || static_cast<std::size_t>(v) >= num_tasks) {
        throw std::out_of_range("CostMatrix: task out of range");
    }
    return static_cast<std::size_t>(v);
}
}  // namespace

double CostMatrix::mean(TaskId v) const { return row_mean_[check_task(v, num_tasks_)]; }
double CostMatrix::min(TaskId v) const { return row_min_[check_task(v, num_tasks_)]; }
double CostMatrix::max(TaskId v) const { return row_max_[check_task(v, num_tasks_)]; }
double CostMatrix::stddev(TaskId v) const { return row_stddev_[check_task(v, num_tasks_)]; }

double CostMatrix::median(TaskId v) const {
    const std::size_t row = check_task(v, num_tasks_);
    std::vector<double> vals(costs_.begin() + static_cast<std::ptrdiff_t>(row * num_procs_),
                             costs_.begin() + static_cast<std::ptrdiff_t>((row + 1) * num_procs_));
    std::sort(vals.begin(), vals.end());
    const std::size_t mid = vals.size() / 2;
    return vals.size() % 2 == 1 ? vals[mid] : 0.5 * (vals[mid - 1] + vals[mid]);
}

ProcId CostMatrix::fastest_proc(TaskId v) const {
    const std::size_t row = check_task(v, num_tasks_);
    ProcId best = 0;
    for (std::size_t p = 1; p < num_procs_; ++p) {
        if (costs_[row * num_procs_ + p] <
            costs_[row * num_procs_ + static_cast<std::size_t>(best)]) {
            best = static_cast<ProcId>(p);
        }
    }
    return best;
}

double CostMatrix::serial_time(ProcId p) const {
    if (p < 0 || static_cast<std::size_t>(p) >= num_procs_) {
        throw std::out_of_range("CostMatrix::serial_time: processor out of range");
    }
    double sum = 0.0;
    for (std::size_t v = 0; v < num_tasks_; ++v) {
        sum += costs_[v * num_procs_ + static_cast<std::size_t>(p)];
    }
    return sum;
}

double CostMatrix::best_serial_time() const {
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t p = 0; p < num_procs_; ++p) {
        best = std::min(best, serial_time(static_cast<ProcId>(p)));
    }
    return num_tasks_ > 0 ? best : 0.0;
}

bool CostMatrix::is_homogeneous() const noexcept {
    for (std::size_t v = 0; v < num_tasks_; ++v) {
        if (row_min_[v] != row_max_[v]) return false;
    }
    return true;
}

}  // namespace tsched
