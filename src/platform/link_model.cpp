#include "platform/link_model.hpp"

#include <cmath>
#include <queue>
#include <sstream>
#include <stdexcept>

namespace tsched {

double LinkModel::mean_comm_time(double data, std::size_t num_procs) const {
    if (num_procs < 2) return 0.0;
    double sum = 0.0;
    std::size_t pairs = 0;
    for (std::size_t p = 0; p < num_procs; ++p) {
        for (std::size_t q = 0; q < num_procs; ++q) {
            if (p == q) continue;
            sum += comm_time(data, static_cast<ProcId>(p), static_cast<ProcId>(q));
            ++pairs;
        }
    }
    return sum / static_cast<double>(pairs);
}

UniformLinkModel::UniformLinkModel(double latency, double bandwidth)
    : latency_(latency), bandwidth_(bandwidth) {
    if (!(latency >= 0.0) || !std::isfinite(latency)) {
        throw std::invalid_argument("UniformLinkModel: latency must be >= 0");
    }
    if (!(bandwidth > 0.0) || !std::isfinite(bandwidth)) {
        throw std::invalid_argument("UniformLinkModel: bandwidth must be > 0");
    }
}

double UniformLinkModel::comm_time(double data, ProcId src, ProcId dst) const {
    if (src == dst) return 0.0;
    return latency_ + data / bandwidth_;
}

double UniformLinkModel::mean_comm_time(double data, std::size_t num_procs) const {
    if (num_procs < 2) return 0.0;
    return latency_ + data / bandwidth_;
}

std::string UniformLinkModel::describe() const {
    std::ostringstream os;
    os << "uniform(latency=" << latency_ << ", bandwidth=" << bandwidth_ << ")";
    return os.str();
}

BusLinkModel::BusLinkModel(double latency, double bandwidth, std::size_t num_procs, double share)
    : latency_(latency), num_procs_(num_procs) {
    if (!(latency >= 0.0)) throw std::invalid_argument("BusLinkModel: latency must be >= 0");
    if (!(bandwidth > 0.0)) throw std::invalid_argument("BusLinkModel: bandwidth must be > 0");
    if (!(share >= 0.0 && share <= 1.0)) {
        throw std::invalid_argument("BusLinkModel: share must be in [0, 1]");
    }
    if (num_procs == 0) throw std::invalid_argument("BusLinkModel: num_procs must be > 0");
    const double contention = 1.0 + share * static_cast<double>(num_procs - 1);
    effective_bandwidth_ = bandwidth / contention;
}

double BusLinkModel::comm_time(double data, ProcId src, ProcId dst) const {
    if (src == dst) return 0.0;
    return latency_ + data / effective_bandwidth_;
}

double BusLinkModel::mean_comm_time(double data, std::size_t num_procs) const {
    if (num_procs < 2) return 0.0;
    return latency_ + data / effective_bandwidth_;
}

std::string BusLinkModel::describe() const {
    std::ostringstream os;
    os << "bus(latency=" << latency_ << ", eff_bandwidth=" << effective_bandwidth_
       << ", procs=" << num_procs_ << ")";
    return os.str();
}

TopologyLinkModel::TopologyLinkModel(std::vector<std::vector<ProcId>> adjacency,
                                     double per_hop_latency, double bandwidth, std::string name)
    : n_(adjacency.size()),
      per_hop_latency_(per_hop_latency),
      bandwidth_(bandwidth),
      name_(std::move(name)) {
    if (n_ == 0) throw std::invalid_argument("TopologyLinkModel: empty topology");
    if (!(per_hop_latency >= 0.0)) {
        throw std::invalid_argument("TopologyLinkModel: latency must be >= 0");
    }
    if (!(bandwidth > 0.0)) throw std::invalid_argument("TopologyLinkModel: bandwidth must be > 0");

    // Symmetrize the adjacency (edges may be listed on either endpoint).
    std::vector<std::vector<ProcId>> adj(n_);
    for (std::size_t p = 0; p < n_; ++p) {
        for (const ProcId q : adjacency[p]) {
            if (q < 0 || static_cast<std::size_t>(q) >= n_) {
                throw std::invalid_argument("TopologyLinkModel: neighbour out of range");
            }
            if (static_cast<std::size_t>(q) == p) {
                throw std::invalid_argument("TopologyLinkModel: self-loop");
            }
            adj[p].push_back(q);
            adj[static_cast<std::size_t>(q)].push_back(static_cast<ProcId>(p));
        }
    }

    // All-pairs BFS hop counts.
    hops_.assign(n_ * n_, -1);
    for (std::size_t start = 0; start < n_; ++start) {
        std::queue<std::size_t> frontier;
        hops_[start * n_ + start] = 0;
        frontier.push(start);
        while (!frontier.empty()) {
            const std::size_t cur = frontier.front();
            frontier.pop();
            for (const ProcId next : adj[cur]) {
                const auto ni = static_cast<std::size_t>(next);
                if (hops_[start * n_ + ni] < 0) {
                    hops_[start * n_ + ni] = hops_[start * n_ + cur] + 1;
                    frontier.push(ni);
                }
            }
        }
    }
    for (const int h : hops_) {
        if (h < 0) throw std::invalid_argument("TopologyLinkModel: topology is disconnected");
        diameter_ = std::max(diameter_, h);
    }
}

int TopologyLinkModel::hops(ProcId src, ProcId dst) const {
    if (src < 0 || dst < 0 || static_cast<std::size_t>(src) >= n_ ||
        static_cast<std::size_t>(dst) >= n_) {
        throw std::out_of_range("TopologyLinkModel::hops: processor out of range");
    }
    return hops_[static_cast<std::size_t>(src) * n_ + static_cast<std::size_t>(dst)];
}

double TopologyLinkModel::comm_time(double data, ProcId src, ProcId dst) const {
    if (src == dst) return 0.0;
    const int h = hops(src, dst);
    // Store-and-forward: the message pays the transfer once per hop.
    return static_cast<double>(h) * (per_hop_latency_ + data / bandwidth_);
}

std::string TopologyLinkModel::describe() const {
    std::ostringstream os;
    os << name_ << "(procs=" << n_ << ", diameter=" << diameter_
       << ", hop_latency=" << per_hop_latency_ << ", bandwidth=" << bandwidth_ << ")";
    return os.str();
}

std::shared_ptr<TopologyLinkModel> TopologyLinkModel::ring(std::size_t p, double latency,
                                                           double bandwidth) {
    if (p == 0) throw std::invalid_argument("ring: p must be > 0");
    std::vector<std::vector<ProcId>> adj(p);
    for (std::size_t i = 0; i + 1 < p; ++i) adj[i].push_back(static_cast<ProcId>(i + 1));
    if (p > 2) adj[p - 1].push_back(0);
    return std::make_shared<TopologyLinkModel>(std::move(adj), latency, bandwidth, "ring");
}

std::shared_ptr<TopologyLinkModel> TopologyLinkModel::mesh2d(std::size_t rows, std::size_t cols,
                                                             double latency, double bandwidth) {
    if (rows == 0 || cols == 0) throw std::invalid_argument("mesh2d: empty mesh");
    std::vector<std::vector<ProcId>> adj(rows * cols);
    for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < cols; ++c) {
            const std::size_t i = r * cols + c;
            if (c + 1 < cols) adj[i].push_back(static_cast<ProcId>(i + 1));
            if (r + 1 < rows) adj[i].push_back(static_cast<ProcId>(i + cols));
        }
    }
    return std::make_shared<TopologyLinkModel>(std::move(adj), latency, bandwidth, "mesh2d");
}

std::shared_ptr<TopologyLinkModel> TopologyLinkModel::hypercube(std::size_t dims, double latency,
                                                                double bandwidth) {
    const std::size_t p = static_cast<std::size_t>(1) << dims;
    std::vector<std::vector<ProcId>> adj(p);
    for (std::size_t i = 0; i < p; ++i) {
        for (std::size_t d = 0; d < dims; ++d) {
            const std::size_t j = i ^ (static_cast<std::size_t>(1) << d);
            if (j > i) adj[i].push_back(static_cast<ProcId>(j));
        }
    }
    return std::make_shared<TopologyLinkModel>(std::move(adj), latency, bandwidth, "hypercube");
}

std::shared_ptr<TopologyLinkModel> TopologyLinkModel::star(std::size_t p, double latency,
                                                           double bandwidth) {
    if (p == 0) throw std::invalid_argument("star: p must be > 0");
    std::vector<std::vector<ProcId>> adj(p);
    for (std::size_t i = 1; i < p; ++i) adj[0].push_back(static_cast<ProcId>(i));
    return std::make_shared<TopologyLinkModel>(std::move(adj), latency, bandwidth, "star");
}

std::shared_ptr<TopologyLinkModel> TopologyLinkModel::fully_connected(std::size_t p, double latency,
                                                                      double bandwidth) {
    if (p == 0) throw std::invalid_argument("fully_connected: p must be > 0");
    std::vector<std::vector<ProcId>> adj(p);
    for (std::size_t i = 0; i < p; ++i) {
        for (std::size_t j = i + 1; j < p; ++j) adj[i].push_back(static_cast<ProcId>(j));
    }
    return std::make_shared<TopologyLinkModel>(std::move(adj), latency, bandwidth, "crossbar");
}

}  // namespace tsched
