#include "platform/platform_io.hpp"

#include <fstream>
#include <iomanip>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace tsched {

namespace {
/// max_digits10 guarantees exact TSP round-trips (same policy as TSG/TSS).
std::string fmt_double(double x) {
    std::ostringstream os;
    os << std::setprecision(17) << x;
    return os.str();
}
}  // namespace

void write_tsp(std::ostream& os, const Machine& machine, const CostMatrix& costs) {
    const auto* uniform = dynamic_cast<const UniformLinkModel*>(&machine.links());
    if (uniform == nullptr) {
        throw std::invalid_argument(
            "write_tsp: only uniform link models are serializable, got: " +
            machine.links().describe());
    }
    if (machine.num_procs() != costs.num_procs()) {
        throw std::invalid_argument("write_tsp: machine/cost-matrix processor count mismatch");
    }
    const std::size_t procs = machine.num_procs();
    const std::size_t tasks = costs.num_tasks();
    os << "# tsched platform\n";
    os << "tsp " << procs << ' ' << tasks << '\n';
    for (std::size_t p = 0; p < procs; ++p) {
        os << "s " << p << ' ' << fmt_double(machine.speed(static_cast<ProcId>(p))) << '\n';
    }
    os << "link uniform " << fmt_double(uniform->latency()) << ' '
       << fmt_double(uniform->bandwidth()) << '\n';
    for (std::size_t v = 0; v < tasks; ++v) {
        os << "w " << v;
        for (std::size_t p = 0; p < procs; ++p) {
            os << ' ' << fmt_double(costs(static_cast<TaskId>(v), static_cast<ProcId>(p)));
        }
        os << '\n';
    }
}

std::string to_tsp(const Machine& machine, const CostMatrix& costs) {
    std::ostringstream os;
    write_tsp(os, machine, costs);
    return os.str();
}

PlatformSpec read_tsp(std::istream& is) {
    std::string line;
    std::size_t line_no = 0;
    bool header_seen = false;
    std::size_t expect_procs = 0;
    std::size_t expect_tasks = 0;
    std::vector<double> speeds;
    std::vector<double> matrix;
    std::size_t rows_seen = 0;
    std::optional<std::pair<double, double>> link;  // latency, bandwidth

    auto fail = [&](const std::string& what) -> void {
        throw std::runtime_error("read_tsp: line " + std::to_string(line_no) + ": " + what);
    };

    while (std::getline(is, line)) {
        ++line_no;
        if (line.empty() || line[0] == '#') continue;
        std::istringstream ls(line);
        std::string tag;
        ls >> tag;
        if (tag == "tsp") {
            if (header_seen) fail("duplicate header");
            if (!(ls >> expect_procs >> expect_tasks)) fail("malformed header");
            if (expect_procs == 0) fail("platform needs at least one processor");
            header_seen = true;
            speeds.assign(expect_procs, 0.0);
            matrix.assign(expect_procs * expect_tasks, 0.0);
        } else if (tag == "s") {
            if (!header_seen) fail("speed record before header");
            std::size_t p = 0;
            double speed = 0.0;
            if (!(ls >> p >> speed)) fail("malformed speed record");
            if (p >= expect_procs) fail("processor id out of range");
            if (speeds[p] != 0.0) fail("duplicate speed record for P" + std::to_string(p));
            if (!(speed > 0.0)) fail("speed must be > 0");
            speeds[p] = speed;
        } else if (tag == "link") {
            if (!header_seen) fail("link record before header");
            if (link) fail("duplicate link record");
            std::string kind;
            double latency = 0.0;
            double bandwidth = 0.0;
            if (!(ls >> kind)) fail("malformed link record");
            if (kind != "uniform") fail("unsupported link model '" + kind + "'");
            if (!(ls >> latency >> bandwidth)) fail("malformed link record");
            link = {latency, bandwidth};
        } else if (tag == "w") {
            if (!header_seen) fail("cost record before header");
            std::size_t v = 0;
            if (!(ls >> v)) fail("malformed cost record");
            if (v != rows_seen) fail("cost rows must be dense and ascending");
            if (v >= expect_tasks) fail("task id out of range");
            for (std::size_t p = 0; p < expect_procs; ++p) {
                if (!(ls >> matrix[v * expect_procs + p])) {
                    fail("cost row needs " + std::to_string(expect_procs) + " entries");
                }
            }
            ++rows_seen;
        } else {
            fail("unknown record tag '" + tag + "'");
        }
    }
    if (!header_seen) throw std::runtime_error("read_tsp: missing header");
    if (!link) throw std::runtime_error("read_tsp: missing link record");
    for (std::size_t p = 0; p < expect_procs; ++p) {
        if (speeds[p] == 0.0) {
            throw std::runtime_error("read_tsp: missing speed record for P" +
                                     std::to_string(p));
        }
    }
    if (rows_seen != expect_tasks) {
        throw std::runtime_error("read_tsp: header declares " + std::to_string(expect_tasks) +
                                 " cost rows, found " + std::to_string(rows_seen));
    }
    try {
        auto links = std::make_shared<UniformLinkModel>(link->first, link->second);
        return PlatformSpec{Machine(std::move(speeds), std::move(links)),
                            CostMatrix(expect_tasks, expect_procs, std::move(matrix))};
    } catch (const std::invalid_argument& err) {
        throw std::runtime_error(std::string("read_tsp: invalid platform: ") + err.what());
    }
}

PlatformSpec read_tsp_string(const std::string& text) {
    std::istringstream is(text);
    return read_tsp(is);
}

void save_tsp(const std::string& path, const Machine& machine, const CostMatrix& costs) {
    std::ofstream out(path);
    if (!out) throw std::runtime_error("save_tsp: cannot open " + path);
    write_tsp(out, machine, costs);
    if (!out) throw std::runtime_error("save_tsp: write failed for " + path);
}

PlatformSpec load_tsp(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("load_tsp: cannot open " + path);
    return read_tsp(in);
}

}  // namespace tsched
