// Interconnect models.
//
// A LinkModel converts (data volume, source processor, destination processor)
// into a communication time.  All models are contention-free — the standard
// assumption of the static list-scheduling literature (HEFT et al.): each
// processor has a dedicated communication subsystem, so transfers neither
// queue on links nor block computation.
//
// Three concrete models:
//   * UniformLinkModel  — full crossbar with a single latency/bandwidth pair;
//                         the model used in HEFT-family evaluations.
//   * BusLinkModel      — a shared medium: same arithmetic as uniform but
//                         with a multiplicative slowdown proportional to the
//                         number of processors sharing the bus (coarse,
//                         contention-free approximation).
//   * TopologyLinkModel — arbitrary interconnection graph (ring, mesh,
//                         hypercube, ...) with per-hop latency and the
//                         narrowest-link bandwidth along a shortest route.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace tsched {

/// Dense processor index; valid ids are [0, num_procs).
using ProcId = std::int32_t;
inline constexpr ProcId kInvalidProc = -1;

class LinkModel {
public:
    virtual ~LinkModel() = default;

    /// Time to move `data` volume units from processor `src` to `dst`.
    /// Must return 0 when src == dst and a finite non-negative value
    /// otherwise.
    [[nodiscard]] virtual double comm_time(double data, ProcId src, ProcId dst) const = 0;

    /// Mean of comm_time over all ordered pairs src != dst for the given
    /// data volume (used by mean-based ranking).  The default averages
    /// comm_time explicitly; concrete models override with closed forms.
    [[nodiscard]] virtual double mean_comm_time(double data, std::size_t num_procs) const;

    [[nodiscard]] virtual std::string describe() const = 0;
};

using LinkModelPtr = std::shared_ptr<const LinkModel>;

/// Full crossbar: comm = latency + data / bandwidth for any distinct pair.
class UniformLinkModel final : public LinkModel {
public:
    /// `latency` >= 0 (per-message startup), `bandwidth` > 0 (volume/time).
    UniformLinkModel(double latency, double bandwidth);

    [[nodiscard]] double comm_time(double data, ProcId src, ProcId dst) const override;
    [[nodiscard]] double mean_comm_time(double data, std::size_t num_procs) const override;
    [[nodiscard]] std::string describe() const override;

    [[nodiscard]] double latency() const noexcept { return latency_; }
    [[nodiscard]] double bandwidth() const noexcept { return bandwidth_; }

private:
    double latency_;
    double bandwidth_;
};

/// Shared bus: effective bandwidth is divided by a contention factor that
/// grows with the processor count (bw_eff = bandwidth / (1 + share*(P-1))).
class BusLinkModel final : public LinkModel {
public:
    /// `share` in [0,1]: 0 degenerates to the uniform model, 1 models full
    /// serialization of the medium across P processors.
    BusLinkModel(double latency, double bandwidth, std::size_t num_procs, double share = 0.5);

    [[nodiscard]] double comm_time(double data, ProcId src, ProcId dst) const override;
    [[nodiscard]] double mean_comm_time(double data, std::size_t num_procs) const override;
    [[nodiscard]] std::string describe() const override;

    [[nodiscard]] double effective_bandwidth() const noexcept { return effective_bandwidth_; }

private:
    double latency_;
    double effective_bandwidth_;
    std::size_t num_procs_;
};

/// Arbitrary interconnection topology.  Hop counts come from BFS shortest
/// paths over an undirected processor graph; comm = hops * per_hop_latency +
/// data / (bandwidth / hops) — i.e. store-and-forward along the route.
class TopologyLinkModel final : public LinkModel {
public:
    /// `adjacency[p]` lists the neighbours of processor p (undirected edges
    /// may be listed on either side).  Throws std::invalid_argument when the
    /// graph is disconnected.
    TopologyLinkModel(std::vector<std::vector<ProcId>> adjacency, double per_hop_latency,
                      double bandwidth, std::string name = "topology");

    [[nodiscard]] double comm_time(double data, ProcId src, ProcId dst) const override;
    [[nodiscard]] std::string describe() const override;

    [[nodiscard]] std::size_t num_procs() const noexcept { return n_; }
    [[nodiscard]] int hops(ProcId src, ProcId dst) const;
    [[nodiscard]] int diameter() const noexcept { return diameter_; }

    // Topology builders.
    [[nodiscard]] static std::shared_ptr<TopologyLinkModel> ring(std::size_t p, double latency,
                                                                 double bandwidth);
    /// rows*cols 2-D mesh (no wraparound).
    [[nodiscard]] static std::shared_ptr<TopologyLinkModel> mesh2d(std::size_t rows,
                                                                   std::size_t cols,
                                                                   double latency,
                                                                   double bandwidth);
    /// 2^dims-node hypercube.
    [[nodiscard]] static std::shared_ptr<TopologyLinkModel> hypercube(std::size_t dims,
                                                                      double latency,
                                                                      double bandwidth);
    /// Hub-and-spoke: processor 0 is the hub.
    [[nodiscard]] static std::shared_ptr<TopologyLinkModel> star(std::size_t p, double latency,
                                                                 double bandwidth);
    /// Every pair connected (hops == 1), equivalent to uniform.
    [[nodiscard]] static std::shared_ptr<TopologyLinkModel> fully_connected(std::size_t p,
                                                                            double latency,
                                                                            double bandwidth);

private:
    std::size_t n_;
    std::vector<int> hops_;  // n_ x n_ shortest-path hop counts
    double per_hop_latency_;
    double bandwidth_;
    int diameter_ = 0;
    std::string name_;
};

}  // namespace tsched
