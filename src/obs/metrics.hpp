// Runtime metrics subsystem: mergeable latency histograms, gauges, and a
// labelled instrument registry (the quantitative live-telemetry layer the
// serving stack exports; DESIGN §14).
//
// Relation to trace/ (PR 2): trace counters and span timers are *scalar*
// accumulators for algorithm forensics — totals per process run, dumped at
// exit.  obs/ is the serving-time layer above them: distributions instead of
// totals (tail latency, not just mean), point-in-time snapshots with
// delta-since-last support, labels, and wire formats (Prometheus text and
// JSON, obs/export.hpp) that external collectors scrape while the system
// runs.  The two gates are independent: -DTSCHED_TRACE=OFF and
// -DTSCHED_OBS=OFF each compile their own macro layer to no-ops.
//
// LatencyHistogram is log-bucketed (HDR-style): every power of two is split
// into 64 linear sub-buckets, so record() is a couple of bit operations on
// the IEEE-754 representation plus one relaxed atomic add — O(1), no locks,
// thread-safe.  Bucket boundaries are a pure function of the value (never of
// the data seen so far), which makes histograms mergeable (bucket-wise adds,
// associative and commutative) and snapshots byte-stable: the same recorded
// multiset produces the same snapshot regardless of recording order or
// thread interleaving.  The reported quantile is the midpoint of the bucket
// holding the nearest-rank sample, so its relative error versus that exact
// sample is bounded by kMaxRelativeError = 1/128 < 1% (the bucket's relative
// width is 1/64; the midpoint halves it).  min and max are tracked exactly,
// so the extreme quantiles are exact.
//
// Intentionally *not* stored: a floating-point sum.  Accumulating doubles
// concurrently is order-dependent, which would break snapshot byte-stability
// under a thread pool; mean() is derived from bucket midpoints instead and
// inherits the same relative-error bound.
//
// Lock discipline (clang thread-safety checked, DESIGN §13): histograms and
// gauges are internally relaxed-atomic and never take a lock; the registry's
// name->instrument table is GUARDED_BY the registry mutex, and the returned
// references are stable for the registry's lifetime (entries are never
// removed), so hot paths cache them and record lock-free.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/thread_annotations.hpp"

namespace tsched::obs {

/// Instrument labels, e.g. {{"shard", "3"}}.  Canonical form (enforced by
/// the registry and the exporters) is sorted by key; values are free-form.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Sort `labels` by key (then value) into the canonical order.
void canonicalize(Labels& labels);

struct HistogramBucket {
    std::uint32_t index = 0;   ///< LatencyHistogram bucket index
    std::uint64_t count = 0;
    [[nodiscard]] bool operator==(const HistogramBucket&) const = default;
};

/// Point-in-time copy of a LatencyHistogram: sparse non-empty buckets in
/// ascending index order plus exact count/min/max.  Everything in here is a
/// deterministic function of the recorded multiset (see header comment), so
/// equal multisets give byte-equal snapshots.
struct HistogramSnapshot {
    std::uint64_t count = 0;      ///< total recordings, under/overflow included
    std::uint64_t underflow = 0;  ///< values below the bucketed range (incl. <= 0)
    std::uint64_t overflow = 0;   ///< values above the bucketed range (incl. +inf)
    double min = 0.0;             ///< exact smallest recorded value (count > 0)
    double max = 0.0;             ///< exact largest recorded value (count > 0)
    std::vector<HistogramBucket> buckets;

    /// Nearest-rank quantile, reported as the midpoint of the bucket holding
    /// the rank ceil(q*count) sample (clamped to [min, max]); underflow and
    /// overflow resolve to the exact min / max.  Relative error versus the
    /// exact nearest-rank sample is bounded by
    /// LatencyHistogram::kMaxRelativeError.  q in [0, 1]; 0 when empty.
    [[nodiscard]] double quantile(double q) const;

    /// Bucket-midpoint mean (same relative-error bound); 0 when empty.
    [[nodiscard]] double mean() const;

    /// Bucket-wise merge; exact, associative, and commutative.
    void merge(const HistogramSnapshot& other);

    [[nodiscard]] bool operator==(const HistogramSnapshot& other) const = default;
};

/// Log-bucketed latency histogram (header comment above).  Values are
/// dimensionless doubles; by convention the repository records milliseconds.
class LatencyHistogram {
public:
    /// Linear sub-buckets per power of two (2^kSubBits).
    static constexpr int kSubBits = 6;
    /// Bucketed value range: [2^kMinExp, 2^(kMaxExp+1)).  In milliseconds
    /// that is ~1.5e-8 ms (15 fs) to ~2.7e11 ms (8.7 years) — anything a
    /// latency measurement can plausibly produce; outliers land in the
    /// underflow/overflow counts and stay exact through min/max.
    static constexpr int kMinExp = -26;
    static constexpr int kMaxExp = 37;
    static constexpr std::size_t kNumBuckets =
        static_cast<std::size_t>(kMaxExp - kMinExp + 1) << kSubBits;
    /// Bound on |reported quantile - exact nearest-rank sample| relative to
    /// the exact sample: half the 1/64 relative bucket width.
    static constexpr double kMaxRelativeError = 1.0 / 128.0;

    /// Sentinels returned by bucket_index for out-of-range values.
    static constexpr std::uint32_t kUnderflowIndex = 0xFFFFFFFEu;
    static constexpr std::uint32_t kOverflowIndex = 0xFFFFFFFFu;

    LatencyHistogram() = default;
    LatencyHistogram(const LatencyHistogram&) = delete;
    LatencyHistogram& operator=(const LatencyHistogram&) = delete;

    /// O(1), lock-free, thread-safe.  NaN, zero, and negative values count
    /// as underflow (they are not latencies; they must still not be lost).
    void record(double value) noexcept;

    [[nodiscard]] std::uint64_t count() const noexcept {
        return count_.load(std::memory_order_relaxed);
    }

    [[nodiscard]] HistogramSnapshot snapshot() const;

    /// Zero every bucket and the min/max.  Not linearizable against
    /// concurrent record() calls; callers quiesce recording first.
    void reset() noexcept;

    /// Bucket index for a value: the deterministic (exponent, mantissa-top-
    /// 6-bits) decomposition, or a sentinel for out-of-range input.
    [[nodiscard]] static std::uint32_t bucket_index(double value) noexcept;
    /// Inclusive lower / exclusive upper boundary of a bucket.
    [[nodiscard]] static double bucket_lower(std::uint32_t index) noexcept;
    [[nodiscard]] static double bucket_upper(std::uint32_t index) noexcept;

private:
    // min_/max_ start at +/-infinity so the update CAS loops need no
    // "first recording" special case (a relaxed-order initialization
    // handshake would be racy); snapshot() maps the untouched sentinels
    // back to 0.
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> underflow_{0};
    std::atomic<std::uint64_t> overflow_{0};
    std::atomic<double> min_{std::numeric_limits<double>::infinity()};
    std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
    std::vector<std::atomic<std::uint64_t>> bucket_counts_ =
        std::vector<std::atomic<std::uint64_t>>(kNumBuckets);
};

/// Last-value instrument (queue depth, occupancy, hit rate).  Relaxed
/// atomics; add() is a CAS loop for the rare concurrent writer.
class Gauge {
public:
    void set(double value) noexcept { value_.store(value, std::memory_order_relaxed); }
    void add(double delta) noexcept;
    [[nodiscard]] double value() const noexcept {
        return value_.load(std::memory_order_relaxed);
    }

private:
    std::atomic<double> value_{0.0};
};

struct GaugeSample {
    std::string name;
    Labels labels;
    double value = 0.0;
    [[nodiscard]] bool operator==(const GaugeSample&) const = default;
};

struct CounterSample {
    std::string name;
    Labels labels;
    std::uint64_t value = 0;
    [[nodiscard]] bool operator==(const CounterSample&) const = default;
};

struct HistogramSample {
    std::string name;
    Labels labels;
    HistogramSnapshot hist;
    [[nodiscard]] bool operator==(const HistogramSample&) const = default;
};

/// Point-in-time view of a set of instruments.  Components contribute
/// fragments (engine registry, cache gauges, pool stats) that merge into one
/// exportable document; counters exist only at the snapshot level — live
/// counting stays with the trace registry and the components' own atomics.
struct MetricsSnapshot {
    std::vector<CounterSample> counters;
    std::vector<GaugeSample> gauges;
    std::vector<HistogramSample> histograms;

    /// Fold `other` in: same-identity (name+labels) histograms merge,
    /// counters add, gauges take the incoming value; new identities append.
    void merge(const MetricsSnapshot& other);

    /// Canonical order: by name, then labels.  The exporters assume it.
    void sort();

    [[nodiscard]] bool operator==(const MetricsSnapshot&) const = default;
};

/// after - before: counter and histogram activity between two snapshots
/// (zero-activity entries dropped); gauges keep their `after` value.  A
/// delta histogram's min/max are the lifetime extremes from `after`, not
/// window extremes — the buckets are windowed, the extremes are not.
[[nodiscard]] MetricsSnapshot snapshot_delta(const MetricsSnapshot& before,
                                             const MetricsSnapshot& after);

// Named, labelled instrument owner.  find-or-create, stable references,
// append-only — the obs mirror of trace::Registry, plus labels and typed
// instruments.  One process-wide instance backs the macros (registry());
// components with bounded lifetimes (ServeEngine) own their own instance so
// engine teardown cannot leave dangling hot-path references.
class MetricsRegistry {
public:
    /// Find-or-create; labels are canonicalized.  The returned reference is
    /// stable for the registry's lifetime.
    [[nodiscard]] LatencyHistogram& histogram(std::string_view name, Labels labels = {})
        TSCHED_EXCLUDES(mutex_);
    [[nodiscard]] Gauge& gauge(std::string_view name, Labels labels = {})
        TSCHED_EXCLUDES(mutex_);

    [[nodiscard]] MetricsSnapshot snapshot() const TSCHED_EXCLUDES(mutex_);

    /// Activity since the previous delta_since_last() call (or since
    /// construction): snapshot_delta against an internally kept baseline.
    [[nodiscard]] MetricsSnapshot delta_since_last() TSCHED_EXCLUDES(mutex_);

    /// Zero every instrument.  Names stay registered (append-only).
    void reset() TSCHED_EXCLUDES(mutex_);

private:
    template <typename T>
    struct Entry {
        std::string name;
        Labels labels;
        std::unique_ptr<T> instrument;
    };

    mutable Mutex mutex_;
    std::vector<Entry<LatencyHistogram>> histograms_ TSCHED_GUARDED_BY(mutex_);
    std::vector<Entry<Gauge>> gauges_ TSCHED_GUARDED_BY(mutex_);
    MetricsSnapshot last_delta_base_ TSCHED_GUARDED_BY(mutex_);
};

/// The process-wide registry the obs macros record into (library-level
/// instrumentation: scheduler phase timers, executor retry timings).
[[nodiscard]] MetricsRegistry& registry();

}  // namespace tsched::obs
