#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

namespace tsched::obs {

namespace {

void atomic_update_min(std::atomic<double>& slot, double value) noexcept {
    double current = slot.load(std::memory_order_relaxed);
    while (value < current &&
           !slot.compare_exchange_weak(current, value, std::memory_order_relaxed)) {
    }
}

void atomic_update_max(std::atomic<double>& slot, double value) noexcept {
    double current = slot.load(std::memory_order_relaxed);
    while (value > current &&
           !slot.compare_exchange_weak(current, value, std::memory_order_relaxed)) {
    }
}

}  // namespace

void canonicalize(Labels& labels) { std::sort(labels.begin(), labels.end()); }

// ---------------------------------------------------------------------------
// LatencyHistogram

std::uint32_t LatencyHistogram::bucket_index(double value) noexcept {
    // Reject NaN, zero, negatives, and subnormal-or-smaller values in one
    // comparison: none of them satisfy value >= 2^kMinExp.
    constexpr double kLowest = 1.0 / (1ull << -kMinExp);  // 2^kMinExp (kMinExp < 0)
    if (!(value >= kLowest)) return kUnderflowIndex;
    const std::uint64_t bits = std::bit_cast<std::uint64_t>(value);
    const int exponent = static_cast<int>(bits >> 52) - 1023;  // value is normal and positive
    if (exponent > kMaxExp) return kOverflowIndex;  // also catches +inf (exponent 1024)
    const auto sub = static_cast<std::uint32_t>((bits >> (52 - kSubBits)) &
                                                ((1u << kSubBits) - 1u));
    return (static_cast<std::uint32_t>(exponent - kMinExp) << kSubBits) | sub;
}

double LatencyHistogram::bucket_lower(std::uint32_t index) noexcept {
    const int exponent = kMinExp + static_cast<int>(index >> kSubBits);
    const auto sub = static_cast<double>(index & ((1u << kSubBits) - 1u));
    return std::ldexp(1.0 + sub / static_cast<double>(1u << kSubBits), exponent);
}

double LatencyHistogram::bucket_upper(std::uint32_t index) noexcept {
    const int exponent = kMinExp + static_cast<int>(index >> kSubBits);
    const auto sub = static_cast<double>((index & ((1u << kSubBits) - 1u)) + 1u);
    return std::ldexp(1.0 + sub / static_cast<double>(1u << kSubBits), exponent);
}

void LatencyHistogram::record(double value) noexcept {
    const std::uint32_t index = bucket_index(value);
    if (index == kUnderflowIndex) {
        underflow_.fetch_add(1, std::memory_order_relaxed);
    } else if (index == kOverflowIndex) {
        overflow_.fetch_add(1, std::memory_order_relaxed);
    } else {
        bucket_counts_[index].fetch_add(1, std::memory_order_relaxed);
    }
    // min/max are tracked across everything countable (under/overflow
    // included) so the extreme quantiles stay exact; NaN never wins a
    // comparison and is counted (underflow) but ignored here.
    if (!std::isnan(value)) {
        atomic_update_min(min_, value);
        atomic_update_max(max_, value);
    }
    count_.fetch_add(1, std::memory_order_relaxed);
}

HistogramSnapshot LatencyHistogram::snapshot() const {
    HistogramSnapshot snap;
    snap.count = count_.load(std::memory_order_relaxed);
    snap.underflow = underflow_.load(std::memory_order_relaxed);
    snap.overflow = overflow_.load(std::memory_order_relaxed);
    snap.min = min_.load(std::memory_order_relaxed);
    snap.max = max_.load(std::memory_order_relaxed);
    if (snap.min > snap.max) {  // nothing comparable recorded yet (or only NaN)
        snap.min = 0.0;
        snap.max = 0.0;
    }
    for (std::uint32_t i = 0; i < kNumBuckets; ++i) {
        const std::uint64_t c = bucket_counts_[i].load(std::memory_order_relaxed);
        if (c > 0) snap.buckets.push_back({i, c});
    }
    return snap;
}

void LatencyHistogram::reset() noexcept {
    count_.store(0, std::memory_order_relaxed);
    underflow_.store(0, std::memory_order_relaxed);
    overflow_.store(0, std::memory_order_relaxed);
    min_.store(std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
    max_.store(-std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
    for (auto& bucket : bucket_counts_) bucket.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// HistogramSnapshot

double HistogramSnapshot::quantile(double q) const {
    if (count == 0) return 0.0;
    // Nearest-rank: the ceil(q*count)-th smallest recording, clamped to a
    // real rank.  Matches quantile_nearest_rank (util/stats.hpp) so the
    // error bound is stated against a well-defined exact value.
    const auto rank = std::clamp<std::uint64_t>(
        static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count))), 1, count);
    if (rank <= underflow) return min;  // all underflow values are <= 2^kMinExp
    std::uint64_t cumulative = underflow;
    for (const HistogramBucket& bucket : buckets) {
        cumulative += bucket.count;
        if (cumulative >= rank) {
            const double mid = 0.5 * (LatencyHistogram::bucket_lower(bucket.index) +
                                      LatencyHistogram::bucket_upper(bucket.index));
            // min/max are exact; clamping can only move the midpoint toward
            // the in-bucket sample it stands for.
            return std::clamp(mid, min, max);
        }
    }
    return max;  // rank falls in the overflow count
}

double HistogramSnapshot::mean() const {
    if (count == 0) return 0.0;
    double total = static_cast<double>(underflow) * min + static_cast<double>(overflow) * max;
    for (const HistogramBucket& bucket : buckets) {
        const double mid = std::clamp(0.5 * (LatencyHistogram::bucket_lower(bucket.index) +
                                             LatencyHistogram::bucket_upper(bucket.index)),
                                      min, max);
        total += static_cast<double>(bucket.count) * mid;
    }
    return total / static_cast<double>(count);
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
    if (other.count == 0) return;
    if (count == 0) {
        min = other.min;
        max = other.max;
    } else {
        min = std::min(min, other.min);
        max = std::max(max, other.max);
    }
    count += other.count;
    underflow += other.underflow;
    overflow += other.overflow;
    std::vector<HistogramBucket> merged;
    merged.reserve(buckets.size() + other.buckets.size());
    std::size_t a = 0;
    std::size_t b = 0;
    while (a < buckets.size() || b < other.buckets.size()) {
        if (b >= other.buckets.size() ||
            (a < buckets.size() && buckets[a].index < other.buckets[b].index)) {
            merged.push_back(buckets[a++]);
        } else if (a >= buckets.size() || other.buckets[b].index < buckets[a].index) {
            merged.push_back(other.buckets[b++]);
        } else {
            merged.push_back({buckets[a].index, buckets[a].count + other.buckets[b].count});
            ++a;
            ++b;
        }
    }
    buckets = std::move(merged);
}

// ---------------------------------------------------------------------------
// Gauge

void Gauge::add(double delta) noexcept {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta, std::memory_order_relaxed)) {
    }
}

// ---------------------------------------------------------------------------
// MetricsSnapshot

namespace {

template <typename Sample>
Sample* find_same_identity(std::vector<Sample>& samples, const Sample& probe) {
    for (Sample& sample : samples) {
        if (sample.name == probe.name && sample.labels == probe.labels) return &sample;
    }
    return nullptr;
}

template <typename Sample>
const Sample* find_same_identity(const std::vector<Sample>& samples, const Sample& probe) {
    for (const Sample& sample : samples) {
        if (sample.name == probe.name && sample.labels == probe.labels) return &sample;
    }
    return nullptr;
}

template <typename Sample>
void sort_samples(std::vector<Sample>& samples) {
    std::sort(samples.begin(), samples.end(), [](const Sample& a, const Sample& b) {
        if (a.name != b.name) return a.name < b.name;
        return a.labels < b.labels;
    });
}

}  // namespace

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
    for (const CounterSample& sample : other.counters) {
        if (CounterSample* mine = find_same_identity(counters, sample)) {
            mine->value += sample.value;
        } else {
            counters.push_back(sample);
        }
    }
    for (const GaugeSample& sample : other.gauges) {
        if (GaugeSample* mine = find_same_identity(gauges, sample)) {
            mine->value = sample.value;
        } else {
            gauges.push_back(sample);
        }
    }
    for (const HistogramSample& sample : other.histograms) {
        if (HistogramSample* mine = find_same_identity(histograms, sample)) {
            mine->hist.merge(sample.hist);
        } else {
            histograms.push_back(sample);
        }
    }
}

void MetricsSnapshot::sort() {
    sort_samples(counters);
    sort_samples(gauges);
    sort_samples(histograms);
}

MetricsSnapshot snapshot_delta(const MetricsSnapshot& before, const MetricsSnapshot& after) {
    MetricsSnapshot delta;
    for (const CounterSample& sample : after.counters) {
        const CounterSample* base = find_same_identity(before.counters, sample);
        const std::uint64_t prior = base != nullptr ? base->value : 0;
        if (sample.value > prior) {
            delta.counters.push_back({sample.name, sample.labels, sample.value - prior});
        }
    }
    delta.gauges = after.gauges;
    for (const HistogramSample& sample : after.histograms) {
        const HistogramSample* base = find_same_identity(before.histograms, sample);
        if (base == nullptr || base->hist.count == 0) {
            if (sample.hist.count > 0) delta.histograms.push_back(sample);
            continue;
        }
        if (sample.hist.count <= base->hist.count) continue;  // no window activity
        HistogramSample window{sample.name, sample.labels, {}};
        window.hist.count = sample.hist.count - base->hist.count;
        window.hist.underflow = sample.hist.underflow - base->hist.underflow;
        window.hist.overflow = sample.hist.overflow - base->hist.overflow;
        window.hist.min = sample.hist.min;  // lifetime extremes (see header)
        window.hist.max = sample.hist.max;
        for (const HistogramBucket& bucket : sample.hist.buckets) {
            std::uint64_t prior = 0;
            for (const HistogramBucket& base_bucket : base->hist.buckets) {
                if (base_bucket.index == bucket.index) {
                    prior = base_bucket.count;
                    break;
                }
            }
            if (bucket.count > prior) {
                window.hist.buckets.push_back({bucket.index, bucket.count - prior});
            }
        }
        delta.histograms.push_back(std::move(window));
    }
    return delta;
}

// ---------------------------------------------------------------------------
// MetricsRegistry

LatencyHistogram& MetricsRegistry::histogram(std::string_view name, Labels labels) {
    canonicalize(labels);
    LockGuard lock(mutex_);
    for (const auto& entry : histograms_) {
        if (entry.name == name && entry.labels == labels) return *entry.instrument;
    }
    histograms_.push_back(
        {std::string(name), std::move(labels), std::make_unique<LatencyHistogram>()});
    return *histograms_.back().instrument;
}

Gauge& MetricsRegistry::gauge(std::string_view name, Labels labels) {
    canonicalize(labels);
    LockGuard lock(mutex_);
    for (const auto& entry : gauges_) {
        if (entry.name == name && entry.labels == labels) return *entry.instrument;
    }
    gauges_.push_back({std::string(name), std::move(labels), std::make_unique<Gauge>()});
    return *gauges_.back().instrument;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
    MetricsSnapshot snap;
    {
        LockGuard lock(mutex_);
        snap.gauges.reserve(gauges_.size());
        for (const auto& entry : gauges_) {
            snap.gauges.push_back({entry.name, entry.labels, entry.instrument->value()});
        }
        snap.histograms.reserve(histograms_.size());
        for (const auto& entry : histograms_) {
            snap.histograms.push_back({entry.name, entry.labels, entry.instrument->snapshot()});
        }
    }
    snap.sort();
    return snap;
}

MetricsSnapshot MetricsRegistry::delta_since_last() {
    MetricsSnapshot current = snapshot();
    LockGuard lock(mutex_);
    MetricsSnapshot delta = snapshot_delta(last_delta_base_, current);
    last_delta_base_ = std::move(current);
    return delta;
}

void MetricsRegistry::reset() {
    LockGuard lock(mutex_);
    for (auto& entry : histograms_) entry.instrument->reset();
    for (auto& entry : gauges_) entry.instrument->set(0.0);
    last_delta_base_ = MetricsSnapshot{};
}

MetricsRegistry& registry() {
    static MetricsRegistry instance;
    return instance;
}

}  // namespace tsched::obs
