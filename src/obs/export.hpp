// Wire formats for MetricsSnapshot: Prometheus text exposition and JSON.
//
// Both exporters are deterministic: the snapshot is sorted into canonical
// (name, labels) order first, numbers are formatted with fixed printf specs,
// and no timestamps are emitted — byte-equal snapshots produce byte-equal
// documents (tools/obs_smoke.sh and tests/test_obs.cpp rely on this).
//
// Prometheus specifics:
//   * metric names are sanitized ('/', '-', '.' and anything else outside
//     [a-zA-Z0-9_:] become '_') and prefixed "tsched_";
//   * histograms follow the native convention: cumulative `_bucket` series
//     with an `le` upper-bound label (underflow folds into the first bucket,
//     the mandatory `le="+Inf"` line equals `_count`), plus `_sum`.  The
//     histogram stores no float sum (byte-stability, metrics.hpp), so `_sum`
//     is the bucket-midpoint approximation used by mean() — within
//     LatencyHistogram::kMaxRelativeError of the true sum;
//   * gauges and counters are emitted as-is with `# TYPE` headers.
//
// JSON schema (one object, keys sorted as listed):
//   {"schema":1,
//    "counters":[{"name":..,"labels":{..},"value":N},..],
//    "gauges":[{"name":..,"labels":{..},"value":X},..],
//    "histograms":[{"name":..,"labels":{..},"count":N,"underflow":N,
//                   "overflow":N,"min":X,"max":X,"mean":X,
//                   "p50":X,"p95":X,"p99":X,"p999":X,
//                   "buckets":[[lower,upper,count],..]},..]}
#pragma once

#include <string>

#include "obs/metrics.hpp"

namespace tsched::obs {

/// Prometheus text exposition format (version 0.0.4).
[[nodiscard]] std::string to_prometheus(const MetricsSnapshot& snapshot);

/// Deterministic JSON document (schema above).
[[nodiscard]] std::string to_json(const MetricsSnapshot& snapshot);

}  // namespace tsched::obs
