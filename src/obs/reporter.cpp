#include "obs/reporter.hpp"

#include <chrono>
#include <cstdio>
#include <utility>

#include "obs/export.hpp"

namespace tsched::obs {

MetricsReporter::MetricsReporter(ReporterOptions options, Provider provider)
    : options_(std::move(options)), provider_(std::move(provider)) {}

MetricsReporter::~MetricsReporter() { stop(); }

void MetricsReporter::start() {
    if (options_.path.empty() || thread_.joinable()) return;
    {
        LockGuard lock(mutex_);
        stop_requested_ = false;
    }
    thread_ = std::thread([this] { run(); });
}

void MetricsReporter::run() {
    const auto interval = std::chrono::milliseconds(
        options_.interval_ms == 0 ? 1000 : options_.interval_ms);
    for (;;) {
        {
            UniqueLock lock(mutex_);
            while (!stop_requested_) {
                if (cv_.wait_for(lock, interval) == std::cv_status::timeout) break;
            }
            if (stop_requested_) return;  // stop() does the final flush
        }
        if (options_.interval_ms != 0) flush();
    }
}

bool MetricsReporter::flush() {
    if (options_.path.empty()) return false;
    const MetricsSnapshot snap = provider_();

    LockGuard lock(flush_mutex_);
    const char* mode = "wb";
    std::string body;
    if (options_.format == ReporterOptions::Format::kPrometheus) {
        // Scrape-file model: the file always holds the latest exposition.
        body = to_prometheus(snap);
    } else {
        body = to_json(snap);
        body += '\n';
        if (truncated_once_) mode = "ab";
    }
    std::FILE* file = std::fopen(options_.path.c_str(), mode);
    if (file == nullptr) return false;
    const std::size_t written = std::fwrite(body.data(), 1, body.size(), file);
    const bool ok = std::fclose(file) == 0 && written == body.size();
    if (ok) {
        truncated_once_ = true;
        flush_count_.fetch_add(1, std::memory_order_relaxed);
    }
    return ok;
}

void MetricsReporter::stop() {
    bool was_running = thread_.joinable();
    if (was_running) {
        {
            LockGuard lock(mutex_);
            stop_requested_ = true;
        }
        cv_.notify_all();
        thread_.join();
        // Final flush after the loop has quiesced, so the file ends on the
        // complete last state even when the interval never elapsed.
        flush();
    }
}

}  // namespace tsched::obs
