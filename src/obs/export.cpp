#include "obs/export.hpp"

#include <cinttypes>
#include <cstdio>

namespace tsched::obs {

namespace {

// %.9g: enough digits that distinct bucket boundaries stay distinct, few
// enough that the text is stable across libc float-printing quirks.
void append_double(std::string& out, double value) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.9g", value);
    out += buf;
}

void append_u64(std::string& out, std::uint64_t value) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
    out += buf;
}

// ---- Prometheus helpers ----------------------------------------------------

void append_prom_name(std::string& out, std::string_view name) {
    out += "tsched_";
    for (const char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_' || c == ':';
        out += ok ? c : '_';
    }
}

void append_prom_label_value(std::string& out, std::string_view value) {
    out += '"';
    for (const char c : value) {
        switch (c) {
            case '\\': out += "\\\\"; break;
            case '"': out += "\\\""; break;
            case '\n': out += "\\n"; break;
            default: out += c;
        }
    }
    out += '"';
}

/// `{k="v",...}` — with `extra_key`/`extra_value` appended last (used for the
/// histogram `le` label).  Emits nothing when there are no labels at all.
void append_prom_labels(std::string& out, const Labels& labels,
                        std::string_view extra_key = {},
                        std::string_view extra_value = {}) {
    if (labels.empty() && extra_key.empty()) return;
    out += '{';
    bool first = true;
    for (const auto& [key, value] : labels) {
        if (!first) out += ',';
        first = false;
        out += key;
        out += '=';
        append_prom_label_value(out, value);
    }
    if (!extra_key.empty()) {
        if (!first) out += ',';
        out += extra_key;
        out += '=';
        append_prom_label_value(out, extra_value);
    }
    out += '}';
}

void append_prom_type(std::string& out, std::string_view name, std::string_view type) {
    out += "# TYPE ";
    append_prom_name(out, name);
    out += ' ';
    out += type;
    out += '\n';
}

// ---- JSON helpers ----------------------------------------------------------

void append_json_string(std::string& out, std::string_view s) {
    out += '"';
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            case '\r': out += "\\r"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    out += '"';
}

void append_json_labels(std::string& out, const Labels& labels) {
    out += "\"labels\":{";
    for (std::size_t i = 0; i < labels.size(); ++i) {
        if (i) out += ',';
        append_json_string(out, labels[i].first);
        out += ':';
        append_json_string(out, labels[i].second);
    }
    out += '}';
}

}  // namespace

std::string to_prometheus(const MetricsSnapshot& snapshot) {
    MetricsSnapshot snap = snapshot;
    snap.sort();

    std::string out;
    std::string_view last_type_name;  // one # TYPE header per metric name

    for (const auto& sample : snap.counters) {
        if (sample.name != last_type_name) {
            append_prom_type(out, sample.name, "counter");
            last_type_name = sample.name;
        }
        append_prom_name(out, sample.name);
        append_prom_labels(out, sample.labels);
        out += ' ';
        append_u64(out, sample.value);
        out += '\n';
    }

    last_type_name = {};
    for (const auto& sample : snap.gauges) {
        if (sample.name != last_type_name) {
            append_prom_type(out, sample.name, "gauge");
            last_type_name = sample.name;
        }
        append_prom_name(out, sample.name);
        append_prom_labels(out, sample.labels);
        out += ' ';
        append_double(out, sample.value);
        out += '\n';
    }

    last_type_name = {};
    for (const auto& sample : snap.histograms) {
        if (sample.name != last_type_name) {
            append_prom_type(out, sample.name, "histogram");
            last_type_name = sample.name;
        }
        const HistogramSnapshot& hist = sample.hist;
        // Cumulative `le` series.  Underflow is below every boundary, so it
        // seeds the running total; overflow only reaches the +Inf line.
        std::uint64_t cumulative = hist.underflow;
        for (const auto& bucket : hist.buckets) {
            cumulative += bucket.count;
            char le[40];
            std::snprintf(le, sizeof(le), "%.9g",
                          LatencyHistogram::bucket_upper(bucket.index));
            append_prom_name(out, sample.name);
            out += "_bucket";
            append_prom_labels(out, sample.labels, "le", le);
            out += ' ';
            append_u64(out, cumulative);
            out += '\n';
        }
        append_prom_name(out, sample.name);
        out += "_bucket";
        append_prom_labels(out, sample.labels, "le", "+Inf");
        out += ' ';
        append_u64(out, hist.count);
        out += '\n';
        // No exact float sum is stored (byte-stability; metrics.hpp), so
        // _sum is the midpoint approximation mean()*count.
        append_prom_name(out, sample.name);
        out += "_sum";
        append_prom_labels(out, sample.labels);
        out += ' ';
        append_double(out, hist.mean() * static_cast<double>(hist.count));
        out += '\n';
        append_prom_name(out, sample.name);
        out += "_count";
        append_prom_labels(out, sample.labels);
        out += ' ';
        append_u64(out, hist.count);
        out += '\n';
    }
    return out;
}

std::string to_json(const MetricsSnapshot& snapshot) {
    MetricsSnapshot snap = snapshot;
    snap.sort();

    std::string out = "{\"schema\":1,\"counters\":[";
    for (std::size_t i = 0; i < snap.counters.size(); ++i) {
        const auto& sample = snap.counters[i];
        if (i) out += ',';
        out += "{\"name\":";
        append_json_string(out, sample.name);
        out += ',';
        append_json_labels(out, sample.labels);
        out += ",\"value\":";
        append_u64(out, sample.value);
        out += '}';
    }
    out += "],\"gauges\":[";
    for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
        const auto& sample = snap.gauges[i];
        if (i) out += ',';
        out += "{\"name\":";
        append_json_string(out, sample.name);
        out += ',';
        append_json_labels(out, sample.labels);
        out += ",\"value\":";
        append_double(out, sample.value);
        out += '}';
    }
    out += "],\"histograms\":[";
    for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
        const auto& sample = snap.histograms[i];
        const HistogramSnapshot& hist = sample.hist;
        if (i) out += ',';
        out += "{\"name\":";
        append_json_string(out, sample.name);
        out += ',';
        append_json_labels(out, sample.labels);
        out += ",\"count\":";
        append_u64(out, hist.count);
        out += ",\"underflow\":";
        append_u64(out, hist.underflow);
        out += ",\"overflow\":";
        append_u64(out, hist.overflow);
        out += ",\"min\":";
        append_double(out, hist.min);
        out += ",\"max\":";
        append_double(out, hist.max);
        out += ",\"mean\":";
        append_double(out, hist.mean());
        out += ",\"p50\":";
        append_double(out, hist.quantile(0.50));
        out += ",\"p95\":";
        append_double(out, hist.quantile(0.95));
        out += ",\"p99\":";
        append_double(out, hist.quantile(0.99));
        out += ",\"p999\":";
        append_double(out, hist.quantile(0.999));
        out += ",\"buckets\":[";
        for (std::size_t b = 0; b < hist.buckets.size(); ++b) {
            if (b) out += ',';
            out += '[';
            append_double(out, LatencyHistogram::bucket_lower(hist.buckets[b].index));
            out += ',';
            append_double(out, LatencyHistogram::bucket_upper(hist.buckets[b].index));
            out += ',';
            append_u64(out, hist.buckets[b].count);
            out += ']';
        }
        out += "]}";
    }
    out += "]}";
    return out;
}

}  // namespace tsched::obs
