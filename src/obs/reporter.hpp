// MetricsReporter: background thread that periodically pulls a
// MetricsSnapshot from a provider callback and flushes it to a file.
//
// Output modes:
//   * kJson        — one JSON document per line, appended (a JSONL time
//                    series a collector can tail);
//   * kPrometheus  — the file is rewritten with the latest exposition on
//                    every flush (the scrape-file model: node_exporter's
//                    textfile collector reads "current state", not history).
//
// Lifetime: stop() (also run by the destructor) joins the thread after one
// final flush, so the last snapshot always reaches the file even when the
// interval never elapsed.  The provider must outlive the reporter — in
// practice replay_trace()/tsched_serve own both and destroy the reporter
// first.
//
// Lock discipline: the interval wait is an annotated CondVar::wait_for loop
// over `stop_requested_` (GUARDED_BY mutex_); flush() serializes concurrent
// writers with its own flush_mutex_ (never held while waiting), so a slow
// disk can delay other flushers but never blocks recorders.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "obs/metrics.hpp"
#include "util/thread_annotations.hpp"

namespace tsched::obs {

struct ReporterOptions {
    enum class Format : std::uint8_t { kJson, kPrometheus };

    std::string path;                    ///< output file; empty disables start()
    Format format = Format::kJson;
    std::uint64_t interval_ms = 1000;    ///< flush period; 0 = final flush only
};

class MetricsReporter {
public:
    using Provider = std::function<MetricsSnapshot()>;

    MetricsReporter(ReporterOptions options, Provider provider);
    ~MetricsReporter();

    MetricsReporter(const MetricsReporter&) = delete;
    MetricsReporter& operator=(const MetricsReporter&) = delete;

    /// Launch the background flush loop.  No-op when the path is empty or
    /// the loop is already running.
    void start() TSCHED_EXCLUDES(mutex_);

    /// Pull a snapshot and write it now (callable with or without the
    /// background loop; replay's per-epoch mode calls this directly).
    /// Returns false if the file could not be written.
    bool flush() TSCHED_EXCLUDES(flush_mutex_);

    /// Final flush, then stop and join the background thread.  Idempotent.
    void stop() TSCHED_EXCLUDES(mutex_);

    /// Number of successful flushes so far.
    [[nodiscard]] std::uint64_t flush_count() const noexcept {
        return flush_count_.load(std::memory_order_relaxed);
    }

private:
    void run() TSCHED_EXCLUDES(mutex_);

    const ReporterOptions options_;
    const Provider provider_;

    Mutex mutex_;
    CondVar cv_;
    bool stop_requested_ TSCHED_GUARDED_BY(mutex_) = false;

    Mutex flush_mutex_;
    // JSONL mode: truncate any stale file on the first flush, append after.
    bool truncated_once_ TSCHED_GUARDED_BY(flush_mutex_) = false;

    std::thread thread_;  // accessed only from the owner thread
    std::atomic<std::uint64_t> flush_count_{0};
};

}  // namespace tsched::obs
