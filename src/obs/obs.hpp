// obs macro front-end: metric recording that compiles to nothing when the
// metrics subsystem is off.
//
//   TSCHED_OBS_RECORD("sched/phase/rank_ms", ms);   // histogram record
//   TSCHED_OBS_PHASE("sched/phase/rank_ms");        // RAII: records the
//                                                   // enclosing scope's ms
//   TSCHED_OBS_GAUGE_SET("pool/queue_depth", n);    // gauge = n
//
// Gate: the CMake option TSCHED_OBS (default ON) defines TSCHED_OBS_ENABLED
// project-wide, mirroring the TSCHED_TRACE pattern (trace/trace.hpp).  With
// the option OFF every macro expands to a no-op that does not even evaluate
// its value argument, so instrumented hot paths carry zero cost — no clock
// reads, no atomic adds, no registry references.  A single translation unit
// can force the no-op expansion with TSCHED_OBS_FORCE_OFF before including
// this header (tests/test_obs_off.cpp does exactly that).
//
// All name-based macros record into the process-wide obs::registry().
// Components with their own MetricsRegistry (ServeEngine) cache instrument
// references as members and guard the recording sites with TSCHED_OBS_ON
// directly.
//
// When enabled, a record costs the registry lookup once per call site (a
// function-local static), then one bucket computation and relaxed atomic
// add per hit.
#pragma once

#include "obs/metrics.hpp"

#if defined(TSCHED_OBS_ENABLED) && !defined(TSCHED_OBS_FORCE_OFF)
#define TSCHED_OBS_ON 1
#else
#define TSCHED_OBS_ON 0
#endif

#if TSCHED_OBS_ON

#include "util/stopwatch.hpp"

namespace tsched::obs {

/// RAII scope timer feeding a LatencyHistogram in milliseconds.
class ScopedPhase {
public:
    explicit ScopedPhase(LatencyHistogram& hist) noexcept : hist_(hist) {}
    ~ScopedPhase() { hist_.record(watch_.elapsed_ms()); }
    ScopedPhase(const ScopedPhase&) = delete;
    ScopedPhase& operator=(const ScopedPhase&) = delete;

private:
    LatencyHistogram& hist_;
    Stopwatch watch_;
};

}  // namespace tsched::obs

#define TSCHED_OBS_CONCAT_INNER(a, b) a##b
#define TSCHED_OBS_CONCAT(a, b) TSCHED_OBS_CONCAT_INNER(a, b)

#define TSCHED_OBS_RECORD(name, value_ms)                                      \
    do {                                                                       \
        static ::tsched::obs::LatencyHistogram& TSCHED_OBS_CONCAT(             \
            tsched_obs_hist_, __LINE__) =                                      \
            ::tsched::obs::registry().histogram(name);                         \
        TSCHED_OBS_CONCAT(tsched_obs_hist_, __LINE__)                          \
            .record(static_cast<double>(value_ms));                            \
    } while (0)

#define TSCHED_OBS_PHASE(name)                                                 \
    ::tsched::obs::ScopedPhase TSCHED_OBS_CONCAT(tsched_obs_phase_, __LINE__)( \
        ::tsched::obs::registry().histogram(name))

#define TSCHED_OBS_GAUGE_SET(name, value)                                      \
    do {                                                                       \
        static ::tsched::obs::Gauge& TSCHED_OBS_CONCAT(tsched_obs_gauge_,      \
                                                       __LINE__) =             \
            ::tsched::obs::registry().gauge(name);                             \
        TSCHED_OBS_CONCAT(tsched_obs_gauge_, __LINE__)                         \
            .set(static_cast<double>(value));                                  \
    } while (0)

#define TSCHED_OBS_GAUGE_ADD(name, delta)                                      \
    do {                                                                       \
        static ::tsched::obs::Gauge& TSCHED_OBS_CONCAT(tsched_obs_gauge_,      \
                                                       __LINE__) =             \
            ::tsched::obs::registry().gauge(name);                             \
        TSCHED_OBS_CONCAT(tsched_obs_gauge_, __LINE__)                         \
            .add(static_cast<double>(delta));                                  \
    } while (0)

/// Record into an already-held LatencyHistogram reference (component-local
/// registries: ServeEngine's cached members) — no global-registry lookup.
#define TSCHED_OBS_RECORD_INTO(hist, value_ms) \
    (hist).record(static_cast<double>(value_ms))

#else  // metrics disabled: all macros are no-ops

#define TSCHED_OBS_RECORD(name, value_ms) static_cast<void>(0)
#define TSCHED_OBS_PHASE(name) static_cast<void>(0)
#define TSCHED_OBS_GAUGE_SET(name, value) static_cast<void>(0)
#define TSCHED_OBS_GAUGE_ADD(name, delta) static_cast<void>(0)
#define TSCHED_OBS_RECORD_INTO(hist, value_ms) static_cast<void>(0)

#endif
