// E7 — FFT butterfly application graphs: average SLR and speedup vs input
// size.  FFT graphs have fixed structure per size, so only the cost
// randomization varies across trials.
#include "common.hpp"
#include "core/registry.hpp"

using namespace tsched;
using namespace tsched::bench;

int main(int argc, char** argv) {
    const Args args(argc, argv);
    BenchConfig config;
    config.experiment = "E7";
    config.title = "FFT graphs: SLR and speedup vs input points (P=8)";
    config.axis = "points";
    config.algos = default_comparison_set();
    apply_common_flags(config, args);

    const double ccr = args.get_double("ccr", 1.0);
    const double beta = args.get_double("beta", 0.5);

    std::vector<SweepPoint> points;
    for (const auto n : args.get_int_list("points", {8, 16, 32, 64})) {
        workload::InstanceParams params;
        params.shape = workload::Shape::kFft;
        params.size = static_cast<std::size_t>(n);
        params.num_procs = 8;
        params.ccr = ccr;
        params.beta = beta;
        points.push_back({std::to_string(n), params});
    }
    run_sweep(config, points, {Metric::kSlr, Metric::kSpeedup});
    return 0;
}
