// E2 — Average SLR vs CCR (the "SLR vs communication-to-computation ratio"
// figure): where list schedulers separate most clearly.
//
// Random layered DAGs, n = 100, P = 8, beta = 0.5.
#include "common.hpp"
#include "core/registry.hpp"

using namespace tsched;
using namespace tsched::bench;

int main(int argc, char** argv) {
    const Args args(argc, argv);
    BenchConfig config;
    config.experiment = "E2";
    config.title = "average SLR vs CCR (random layered graphs, n=100, P=8)";
    config.axis = "CCR";
    config.algos = default_comparison_set();
    apply_common_flags(config, args);

    const auto ccrs = args.get_double_list("ccr", {0.1, 0.5, 1.0, 2.0, 5.0, 10.0});
    const double beta = args.get_double("beta", 0.5);

    std::vector<SweepPoint> points;
    for (const double ccr : ccrs) {
        workload::InstanceParams params;
        params.shape = workload::Shape::kLayered;
        params.size = 100;
        params.num_procs = 8;
        params.ccr = ccr;
        params.beta = beta;
        char label[32];
        std::snprintf(label, sizeof(label), "%.1f", ccr);
        points.push_back({label, params});
    }
    run_sweep(config, points, {Metric::kSlr});
    return 0;
}
