// E9 — Homogeneous systems (the paper's title covers both worlds): beta = 0
// so every processor runs every task at the same speed.  The classic
// homogeneous heuristics (MCP, ETF, HLFET) join the comparison, and the
// contribution must specialise cleanly (ILS's rank reduces to rank_u).
//
// Three workload families: random layered, Gaussian elimination, FFT.
#include "common.hpp"
#include "core/registry.hpp"

using namespace tsched;
using namespace tsched::bench;

int main(int argc, char** argv) {
    const Args args(argc, argv);
    BenchConfig config;
    config.experiment = "E9";
    config.title = "homogeneous systems (beta=0): SLR across workload families (P=8)";
    config.axis = "workload";
    config.algos = {"ils", "ils-d", "heft", "cpop", "mcp", "etf", "hlfet", "dls"};
    apply_common_flags(config, args);

    const double ccr = args.get_double("ccr", 1.0);

    std::vector<SweepPoint> points;
    {
        workload::InstanceParams params;
        params.shape = workload::Shape::kLayered;
        params.size = 100;
        params.num_procs = 8;
        params.ccr = ccr;
        params.beta = 0.0;
        points.push_back({"random n=100", params});
    }
    {
        workload::InstanceParams params;
        params.shape = workload::Shape::kGauss;
        params.size = 15;
        params.num_procs = 8;
        params.ccr = ccr;
        params.beta = 0.0;
        points.push_back({"gauss m=15", params});
    }
    {
        workload::InstanceParams params;
        params.shape = workload::Shape::kFft;
        params.size = 32;
        params.num_procs = 8;
        params.ccr = ccr;
        params.beta = 0.0;
        points.push_back({"fft 32", params});
    }
    {
        workload::InstanceParams params;
        params.shape = workload::Shape::kLaplace;
        params.size = 10;
        params.num_procs = 8;
        params.ccr = ccr;
        params.beta = 0.0;
        points.push_back({"laplace g=10", params});
    }
    run_sweep(config, points, {Metric::kSlr, Metric::kSpeedup});
    return 0;
}
