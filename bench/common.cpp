#include "common.hpp"

#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>

#include "util/thread_pool.hpp"

#include "analysis/problem_lints.hpp"
#include "core/registry.hpp"
#include "trace/counters.hpp"
#include "util/log.hpp"
#include "util/stopwatch.hpp"

namespace tsched::bench {

const char* metric_name(Metric metric) noexcept {
    switch (metric) {
        case Metric::kSlr: return "SLR";
        case Metric::kSpeedup: return "speedup";
        case Metric::kEfficiency: return "efficiency";
        case Metric::kMakespan: return "makespan";
        case Metric::kSchedTimeMs: return "sched time [ms]";
        case Metric::kDuplicates: return "duplicates";
    }
    return "?";
}

void apply_common_flags(BenchConfig& config, const Args& args) {
    config.trials = static_cast<std::size_t>(
        args.get_int("trials", static_cast<std::int64_t>(config.trials)));
    config.seed = static_cast<std::uint64_t>(
        args.get_int("seed", static_cast<std::int64_t>(config.seed)));
    config.algos = args.get_string_list("algos", config.algos);
    config.csv_path = args.get_string("csv", config.csv_path);
    config.jobs =
        static_cast<std::size_t>(args.get_int("jobs", static_cast<std::int64_t>(config.jobs)));
    config.lint = args.get_bool("lint", config.lint);
    config.trace_dir = args.get_string("trace-dir", config.trace_dir);
}

void print_banner(const BenchConfig& config) {
    std::cout << "== " << config.experiment << ": " << config.title << " ==\n";
    std::cout << "   trials/point=" << config.trials << "  seed=" << config.seed
              << "  jobs=" << config.jobs << "  schedulers=";
    for (std::size_t i = 0; i < config.algos.size(); ++i) {
        if (i) std::cout << ',';
        std::cout << config.algos[i];
    }
    std::cout << "\n\n";
}

namespace {
/// Filesystem-safe version of a sweep-point label ("CCR=0.5" -> "CCR_0.5").
std::string safe_label(const std::string& label) {
    std::string out = label;
    for (char& c : out) {
        const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                          (c >= '0' && c <= '9') || c == '-' || c == '.';
        if (!keep) c = '_';
    }
    return out;
}

/// Write one JSON file describing the trace activity of a single sweep point
/// (counter/span deltas plus the point's wall time).  Failures warn and are
/// otherwise ignored: tracing must never take a bench run down.
void dump_point_trace(const std::string& dir, const BenchConfig& config,
                      const std::string& label, double wall_ms,
                      const trace::Snapshot& delta) {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    const std::filesystem::path path = std::filesystem::path(dir) /
                                       (config.experiment + "_" + safe_label(label) + ".json");
    std::ofstream out(path);
    if (!out) {
        TSCHED_WARN << "trace-dir: could not open " << path.string();
        return;
    }
    char wall[32];
    std::snprintf(wall, sizeof(wall), "%.3f", wall_ms);
    out << "{\"experiment\": \"" << config.experiment << "\", \"label\": \"" << label
        << "\", \"wall_ms\": " << wall << ", \"trace\": " << trace::to_json(delta) << "}\n";
    if (!out) { TSCHED_WARN << "trace-dir: write failed for " << path.string(); }
}

const RunningStats& pick(const SchedulerAggregate& agg, Metric metric) {
    switch (metric) {
        case Metric::kSlr: return agg.slr;
        case Metric::kSpeedup: return agg.speedup;
        case Metric::kEfficiency: return agg.efficiency;
        case Metric::kMakespan: return agg.makespan;
        case Metric::kSchedTimeMs: return agg.sched_time_ms;
        case Metric::kDuplicates: return agg.duplicates;
    }
    return agg.slr;
}
}  // namespace

Table sweep_table(const BenchConfig& config, const std::vector<SweepPoint>& points,
                  const std::vector<PointResult>& results, Metric metric) {
    std::vector<std::string> headers{config.axis};
    for (const auto& algo : config.algos) headers.push_back(algo);
    Table table(std::move(headers));
    for (std::size_t i = 0; i < points.size(); ++i) {
        table.new_row().add(points[i].label);
        for (const auto& algo : config.algos) {
            const RunningStats& stats = pick(results[i].agg.at(algo), metric);
            char cell[64];
            std::snprintf(cell, sizeof(cell), "%.3f +-%.3f", stats.mean(),
                          stats.ci95_halfwidth());
            table.add(std::string(cell));
        }
    }
    return table;
}

std::vector<PointResult> run_sweep(const BenchConfig& config,
                                   const std::vector<SweepPoint>& points,
                                   const std::vector<Metric>& metrics) {
    print_banner(config);
    const auto schedulers = make_schedulers(config.algos);

    // Trial-level parallelism.  Per-point trace dumps difference two
    // process-global counter snapshots; concurrent trials would bleed
    // counter activity across points and silently corrupt the deltas, so
    // --trace-dir forces the serial path.
    std::size_t jobs = config.jobs;
    if (!config.trace_dir.empty() && jobs != 1) {
        std::cerr << "warning: --trace-dir needs process-global counter snapshots; "
                     "ignoring --jobs="
                  << jobs << " and running trials serially\n";
        jobs = 1;
    }
    std::optional<ThreadPool> pool;
    if (jobs != 1) pool.emplace(jobs);

    Stopwatch watch;
    std::vector<PointResult> results;
    results.reserve(points.size());
    std::size_t invalid = 0;
    for (std::size_t i = 0; i < points.size(); ++i) {
        if (config.lint) {
            // Instance fairness audit (--lint): check the first instance of
            // the point against the parameters the sweep requested.
            const workload::InstanceParams& p = points[i].params;
            analysis::InstanceExpectations expect;
            expect.ccr = p.ccr;
            expect.beta = p.beta;
            expect.avg_exec = p.avg_exec;
            analysis::Diagnostics diags;
            analysis::lint_problem(workload::make_instance(p, mix_seed(config.seed, i)), diags,
                                   expect);
            if (!diags.empty()) {
                std::cerr << "lint [" << points[i].label << "]:\n"
                          << analysis::render_text(diags, 16);
            }
        }
        if (config.trace_dir.empty()) {
            results.push_back(run_point(points[i].params, schedulers, config.trials,
                                        mix_seed(config.seed, i),
                                        pool ? &*pool : nullptr));
        } else {
            const trace::Snapshot before = trace::registry().snapshot();
            double wall_ms = 0.0;
            {
                const Stopwatch::Scoped timer(wall_ms);
                results.push_back(run_point(points[i].params, schedulers, config.trials,
                                            mix_seed(config.seed, i)));
            }
            const trace::Snapshot after = trace::registry().snapshot();
            dump_point_trace(config.trace_dir, config, points[i].label, wall_ms,
                             trace::snapshot_delta(before, after));
        }
        invalid += results.back().invalid_schedules;
    }

    for (const Metric metric : metrics) {
        std::cout << "-- mean " << metric_name(metric) << " (+-95% CI) --\n";
        const Table table = sweep_table(config, points, results, metric);
        table.print(std::cout);
        std::cout << '\n';
        if (!config.csv_path.empty()) {
            std::string path = config.csv_path;
            if (metrics.size() > 1) {
                const auto dot = path.rfind('.');
                const std::string suffix = std::string("_") + metric_name(metric);
                if (dot == std::string::npos) {
                    path += suffix;
                } else {
                    path.insert(dot, suffix);
                }
            }
            if (!table.write_csv(path)) {
                std::cerr << "warning: could not write " << path << '\n';
            }
        }
    }
    if (invalid > 0) {
        std::cerr << "ERROR: " << invalid << " schedules failed validation\n";
    }
    std::cout << "(sweep wall time: " << watch.elapsed_seconds() << " s)\n\n";
    return results;
}

}  // namespace tsched::bench
