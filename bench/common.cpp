#include "common.hpp"

#include <iostream>

#include "analysis/problem_lints.hpp"
#include "core/registry.hpp"
#include "util/stopwatch.hpp"

namespace tsched::bench {

const char* metric_name(Metric metric) noexcept {
    switch (metric) {
        case Metric::kSlr: return "SLR";
        case Metric::kSpeedup: return "speedup";
        case Metric::kEfficiency: return "efficiency";
        case Metric::kMakespan: return "makespan";
        case Metric::kSchedTimeMs: return "sched time [ms]";
        case Metric::kDuplicates: return "duplicates";
    }
    return "?";
}

void apply_common_flags(BenchConfig& config, const Args& args) {
    config.trials = static_cast<std::size_t>(
        args.get_int("trials", static_cast<std::int64_t>(config.trials)));
    config.seed = static_cast<std::uint64_t>(
        args.get_int("seed", static_cast<std::int64_t>(config.seed)));
    config.algos = args.get_string_list("algos", config.algos);
    config.csv_path = args.get_string("csv", config.csv_path);
    config.lint = args.get_bool("lint", config.lint);
}

void print_banner(const BenchConfig& config) {
    std::cout << "== " << config.experiment << ": " << config.title << " ==\n";
    std::cout << "   trials/point=" << config.trials << "  seed=" << config.seed
              << "  schedulers=";
    for (std::size_t i = 0; i < config.algos.size(); ++i) {
        if (i) std::cout << ',';
        std::cout << config.algos[i];
    }
    std::cout << "\n\n";
}

namespace {
const RunningStats& pick(const SchedulerAggregate& agg, Metric metric) {
    switch (metric) {
        case Metric::kSlr: return agg.slr;
        case Metric::kSpeedup: return agg.speedup;
        case Metric::kEfficiency: return agg.efficiency;
        case Metric::kMakespan: return agg.makespan;
        case Metric::kSchedTimeMs: return agg.sched_time_ms;
        case Metric::kDuplicates: return agg.duplicates;
    }
    return agg.slr;
}
}  // namespace

Table sweep_table(const BenchConfig& config, const std::vector<SweepPoint>& points,
                  const std::vector<PointResult>& results, Metric metric) {
    std::vector<std::string> headers{config.axis};
    for (const auto& algo : config.algos) headers.push_back(algo);
    Table table(std::move(headers));
    for (std::size_t i = 0; i < points.size(); ++i) {
        table.new_row().add(points[i].label);
        for (const auto& algo : config.algos) {
            const RunningStats& stats = pick(results[i].agg.at(algo), metric);
            char cell[64];
            std::snprintf(cell, sizeof(cell), "%.3f +-%.3f", stats.mean(),
                          stats.ci95_halfwidth());
            table.add(std::string(cell));
        }
    }
    return table;
}

std::vector<PointResult> run_sweep(const BenchConfig& config,
                                   const std::vector<SweepPoint>& points,
                                   const std::vector<Metric>& metrics) {
    print_banner(config);
    const auto schedulers = make_schedulers(config.algos);

    Stopwatch watch;
    std::vector<PointResult> results;
    results.reserve(points.size());
    std::size_t invalid = 0;
    for (std::size_t i = 0; i < points.size(); ++i) {
        if (config.lint) {
            // Instance fairness audit (--lint): check the first instance of
            // the point against the parameters the sweep requested.
            const workload::InstanceParams& p = points[i].params;
            analysis::InstanceExpectations expect;
            expect.ccr = p.ccr;
            expect.beta = p.beta;
            expect.avg_exec = p.avg_exec;
            analysis::Diagnostics diags;
            analysis::lint_problem(workload::make_instance(p, mix_seed(config.seed, i)), diags,
                                   expect);
            if (!diags.empty()) {
                std::cerr << "lint [" << points[i].label << "]:\n"
                          << analysis::render_text(diags, 16);
            }
        }
        results.push_back(run_point(points[i].params, schedulers, config.trials,
                                    mix_seed(config.seed, i)));
        invalid += results.back().invalid_schedules;
    }

    for (const Metric metric : metrics) {
        std::cout << "-- mean " << metric_name(metric) << " (+-95% CI) --\n";
        const Table table = sweep_table(config, points, results, metric);
        table.print(std::cout);
        std::cout << '\n';
        if (!config.csv_path.empty()) {
            std::string path = config.csv_path;
            if (metrics.size() > 1) {
                const auto dot = path.rfind('.');
                const std::string suffix = std::string("_") + metric_name(metric);
                if (dot == std::string::npos) {
                    path += suffix;
                } else {
                    path.insert(dot, suffix);
                }
            }
            if (!table.write_csv(path)) {
                std::cerr << "warning: could not write " << path << '\n';
            }
        }
    }
    if (invalid > 0) {
        std::cerr << "ERROR: " << invalid << " schedules failed validation\n";
    }
    std::cout << "(sweep wall time: " << watch.elapsed_seconds() << " s)\n\n";
    return results;
}

}  // namespace tsched::bench
