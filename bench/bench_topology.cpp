// E13 — Interconnect topology study: the *same* problems (identical DAGs,
// execution costs, and edge volumes) bound to different interconnects.
// Store-and-forward per-hop costs make sparse topologies progressively more
// expensive; the table reports how much each scheduler's makespan inflates
// relative to the full crossbar.
#include <iostream>

#include "common.hpp"
#include "core/registry.hpp"
#include "sched/validate.hpp"

using namespace tsched;
using namespace tsched::bench;

int main(int argc, char** argv) {
    const Args args(argc, argv);
    BenchConfig config;
    config.experiment = "E13";
    config.title = "topology study: makespan vs interconnect (same problems, P=8)";
    config.axis = "network";
    config.algos = {"ils", "ils-d", "heft", "cpop"};
    config.trials = 15;
    apply_common_flags(config, args);
    print_banner(config);

    const double latency = args.get_double("latency", 0.5);
    const double bandwidth = args.get_double("bandwidth", 1.0);
    const double ccr = args.get_double("ccr", 3.0);
    const auto schedulers = make_schedulers(config.algos);

    struct Net {
        const char* label;
        LinkModelPtr links;
    };
    const std::vector<Net> nets = {
        {"crossbar", TopologyLinkModel::fully_connected(8, latency, bandwidth)},
        {"hypercube", TopologyLinkModel::hypercube(3, latency, bandwidth)},
        {"mesh 2x4", TopologyLinkModel::mesh2d(2, 4, latency, bandwidth)},
        {"star", TopologyLinkModel::star(8, latency, bandwidth)},
        {"ring", TopologyLinkModel::ring(8, latency, bandwidth)},
    };

    std::vector<std::string> headers{config.axis, "diameter"};
    for (const auto& algo : config.algos) headers.push_back(algo + " makespan");
    Table table(std::move(headers));

    std::vector<double> crossbar_means(schedulers.size(), 0.0);
    for (const auto& net : nets) {
        std::vector<RunningStats> makespans(schedulers.size());
        for (std::size_t trial = 0; trial < config.trials; ++trial) {
            // The base instance fixes DAG + costs; only the links swap.
            workload::InstanceParams params;
            params.shape = workload::Shape::kLayered;
            params.size = 80;
            params.num_procs = 8;
            params.ccr = ccr;
            params.beta = 0.5;
            params.latency = latency;
            params.bandwidth = bandwidth;
            const Problem base = workload::make_instance(params, mix_seed(config.seed, trial));
            const Problem problem(std::make_shared<const Dag>(base.dag()),
                                  std::make_shared<const Machine>(
                                      Machine::homogeneous(8, net.links)),
                                  std::make_shared<const CostMatrix>(base.costs()));
            for (std::size_t s = 0; s < schedulers.size(); ++s) {
                const Schedule schedule = schedulers[s]->schedule(problem);
                if (!validate(schedule, problem)) {
                    std::cerr << "ERROR: invalid schedule from " << config.algos[s] << '\n';
                    return 1;
                }
                makespans[s].add(schedule.makespan());
            }
        }
        const auto* topo = dynamic_cast<const TopologyLinkModel*>(net.links.get());
        table.new_row().add(net.label).add(topo != nullptr ? topo->diameter() : 1);
        for (std::size_t s = 0; s < schedulers.size(); ++s) {
            if (std::string(net.label) == "crossbar") crossbar_means[s] = makespans[s].mean();
            char cell[64];
            std::snprintf(cell, sizeof(cell), "%.1f (x%.2f)", makespans[s].mean(),
                          makespans[s].mean() / crossbar_means[s]);
            table.add(std::string(cell));
        }
    }
    std::cout << "-- mean makespan (inflation vs crossbar) --\n";
    table.print(std::cout);
    if (!config.csv_path.empty() && !table.write_csv(config.csv_path)) {
        std::cerr << "warning: could not write " << config.csv_path << '\n';
    }
    std::cout << '\n';
    return 0;
}
