// Shared scaffolding for the experiment binaries.
//
// Every bench binary declares a sweep (one InstanceParams per x-axis point),
// runs it through metrics::run_point, and prints the figure/table the paper
// reports: rows = x-axis values, columns = schedulers.  Common CLI flags:
//   --trials=N       instances per point (default per bench)
//   --seed=S         base seed (default 2007, the paper's year)
//   --algos=a,b,c    scheduler set (default per bench)
//   --csv=PATH       also write the table as CSV
//   --jobs=N         run each point's trials on N pool workers (default 1 =
//                    serial; 0 = all hardware threads).  Per-trial seeds are
//                    derived from mix_seed, and samples are folded in trial
//                    order, so every table is bit-identical for any N.
//   --lint           audit each point's first instance against its requested
//                    CCR/beta/avg-exec (analysis::lint_problem) on stderr
//   --trace-dir=DIR  write one JSON file per sweep point with the point's
//                    wall time and trace counter/span deltas (requires a
//                    TSCHED_TRACE=ON build to be non-empty).  Counter deltas
//                    are process-global snapshots, so trace-dir runs are
//                    forced serial even when --jobs asks for more workers.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "metrics/runner.hpp"
#include "util/args.hpp"
#include "util/table.hpp"
#include "workload/instance.hpp"

namespace tsched::bench {

/// Which aggregate a sweep table reports per scheduler.
enum class Metric { kSlr, kSpeedup, kEfficiency, kMakespan, kSchedTimeMs, kDuplicates };

[[nodiscard]] const char* metric_name(Metric metric) noexcept;

struct SweepPoint {
    std::string label;  ///< x-axis value as printed
    workload::InstanceParams params;
};

struct BenchConfig {
    std::string experiment;                ///< e.g. "E1"
    std::string title;                     ///< human description
    std::string axis;                      ///< x-axis column header
    std::vector<std::string> algos;
    std::size_t trials = 20;
    std::uint64_t seed = 2007;
    std::string csv_path;                  ///< empty = no CSV
    std::size_t jobs = 1;                  ///< trial workers per point (0 = all cores)
    bool lint = false;                     ///< run instance lints per point (--lint)
    std::string trace_dir;                 ///< empty = no per-point trace dumps
};

/// Apply --trials/--seed/--algos/--csv/--lint/--trace-dir overrides to a
/// config.
void apply_common_flags(BenchConfig& config, const Args& args);

/// Print the experiment banner (id, title, parameters).
void print_banner(const BenchConfig& config);

/// Run the sweep and print one table per requested metric (rows = points,
/// columns = schedulers, cells = "mean ±ci95").  Returns the per-point
/// results for benches that post-process (e.g. pairwise grids).
std::vector<PointResult> run_sweep(const BenchConfig& config,
                                   const std::vector<SweepPoint>& points,
                                   const std::vector<Metric>& metrics);

/// Render one metric of a finished sweep as a table.
[[nodiscard]] Table sweep_table(const BenchConfig& config,
                                const std::vector<SweepPoint>& points,
                                const std::vector<PointResult>& results, Metric metric);

}  // namespace tsched::bench
