// E5 — Pairwise comparison table ("% of better / equal / worse schedules"):
// the head-to-head table the HEFT-family papers report.
//
// Trials pool three CCR regimes (0.5 / 1 / 5) over random layered DAGs with
// n = 100, P = 8, beta = 0.5; per-regime grids plus a pooled grid.
#include <iostream>

#include "common.hpp"
#include "core/registry.hpp"
#include "metrics/pairwise.hpp"

using namespace tsched;
using namespace tsched::bench;

int main(int argc, char** argv) {
    const Args args(argc, argv);
    BenchConfig config;
    config.experiment = "E5";
    config.title = "pairwise better/equal/worse comparison (random graphs, n=100, P=8)";
    config.axis = "ccr";
    config.algos = default_comparison_set();
    config.trials = 50;
    apply_common_flags(config, args);
    print_banner(config);

    const auto ccrs = args.get_double_list("ccr", {0.5, 1.0, 5.0});
    const auto schedulers = make_schedulers(config.algos);

    // Pooled counters across regimes.
    std::vector<std::size_t> better(config.algos.size() * config.algos.size(), 0);
    std::vector<std::size_t> equal(config.algos.size() * config.algos.size(), 0);
    std::size_t total_trials = 0;

    for (std::size_t ci = 0; ci < ccrs.size(); ++ci) {
        workload::InstanceParams params;
        params.shape = workload::Shape::kLayered;
        params.size = 100;
        params.num_procs = 8;
        params.ccr = ccrs[ci];
        params.beta = 0.5;
        const PointResult result =
            run_point(params, schedulers, config.trials, mix_seed(config.seed, ci));
        std::cout << "-- CCR = " << ccrs[ci] << " --\n";
        result.pairwise.to_grid().print(std::cout);
        std::cout << '\n';
        for (std::size_t a = 0; a < config.algos.size(); ++a) {
            for (std::size_t b = 0; b < config.algos.size(); ++b) {
                better[a * config.algos.size() + b] += result.pairwise.better(a, b);
                equal[a * config.algos.size() + b] += result.pairwise.equal(a, b);
            }
        }
        total_trials += result.trials;
    }

    std::cout << "-- pooled over all CCR regimes (" << total_trials << " trials) --\n";
    std::vector<std::string> headers{"A \\ B (better/equal/worse %)"};
    headers.insert(headers.end(), config.algos.begin(), config.algos.end());
    Table pooled(std::move(headers));
    for (std::size_t a = 0; a < config.algos.size(); ++a) {
        pooled.new_row().add(config.algos[a]);
        for (std::size_t b = 0; b < config.algos.size(); ++b) {
            if (a == b) {
                pooled.add("-");
                continue;
            }
            const auto bb = better[a * config.algos.size() + b];
            const auto ee = equal[a * config.algos.size() + b];
            const auto ww = total_trials - bb - ee;
            char cell[48];
            std::snprintf(cell, sizeof(cell), "%.0f/%.0f/%.0f",
                          100.0 * static_cast<double>(bb) / static_cast<double>(total_trials),
                          100.0 * static_cast<double>(ee) / static_cast<double>(total_trials),
                          100.0 * static_cast<double>(ww) / static_cast<double>(total_trials));
            pooled.add(std::string(cell));
        }
    }
    pooled.print(std::cout);
    if (!config.csv_path.empty() && !pooled.write_csv(config.csv_path)) {
        std::cerr << "warning: could not write " << config.csv_path << '\n';
    }
    std::cout << '\n';
    return 0;
}
