// R1 — Robustness extension: how much does a static schedule degrade when
// runtime execution/communication times deviate from the estimates?  The
// static decisions stay fixed; the event simulator replays them under
// multiplicative noise and we report realised/static makespan ratios.
#include <iostream>

#include "common.hpp"
#include "core/registry.hpp"
#include "sim/event_sim.hpp"

using namespace tsched;
using namespace tsched::bench;

int main(int argc, char** argv) {
    const Args args(argc, argv);
    const auto n = static_cast<std::size_t>(args.get_int("n", 100));
    const auto procs = static_cast<std::size_t>(args.get_int("procs", 8));
    const double ccr = args.get_double("ccr", 1.0);
    const double beta = args.get_double("beta", 0.5);

    BenchConfig config;
    config.experiment = "R1";
    config.title = "robustness: realised/static makespan under runtime noise (n=" +
                   std::to_string(n) + ", P=" + std::to_string(procs) + ")";
    config.axis = "noise";
    config.algos = {"ils", "ils-d", "heft", "cpop"};
    config.trials = 15;
    apply_common_flags(config, args);
    print_banner(config);

    const auto noises = args.get_double_list("noise", {0.05, 0.1, 0.2, 0.3});
    const std::size_t replays = static_cast<std::size_t>(args.get_int("replays", 10));
    const auto schedulers = make_schedulers(config.algos);

    std::vector<std::string> headers{config.axis};
    for (const auto& algo : config.algos) headers.push_back(algo);
    Table table(std::move(headers));

    for (const double noise : noises) {
        std::vector<RunningStats> ratio(schedulers.size());
        for (std::size_t trial = 0; trial < config.trials; ++trial) {
            workload::InstanceParams params;
            params.shape = workload::Shape::kLayered;
            params.size = n;
            params.num_procs = procs;
            params.ccr = ccr;
            params.beta = beta;
            const Problem problem =
                workload::make_instance(params, mix_seed(config.seed, trial));
            for (std::size_t s = 0; s < schedulers.size(); ++s) {
                const Schedule schedule = schedulers[s]->schedule(problem);
                const double base = schedule.makespan();
                Rng rng(mix_seed(config.seed + 1, trial * 97 + s));
                for (std::size_t r = 0; r < replays; ++r) {
                    const auto noisy = sim::simulate_noisy(schedule, problem, noise, rng);
                    ratio[s].add(noisy.makespan / base);
                }
            }
        }
        char label[32];
        std::snprintf(label, sizeof(label), "%.2f", noise);
        table.new_row().add(std::string(label));
        for (auto& stats : ratio) {
            char cell[64];
            std::snprintf(cell, sizeof(cell), "%.4f +-%.4f", stats.mean(),
                          stats.ci95_halfwidth());
            table.add(std::string(cell));
        }
    }
    std::cout << "-- mean realised/static makespan ratio (+-95% CI) --\n";
    table.print(std::cout);
    if (!config.csv_path.empty() && !table.write_csv(config.csv_path)) {
        std::cerr << "warning: could not write " << config.csv_path << '\n';
    }
    std::cout << '\n';
    return 0;
}
