// E14 — Survey table: every scheduler in the registry on a common grid of
// regimes (heterogeneous low/high CCR, homogeneous), with scheduling time —
// the bird's-eye table a release README quotes.
#include <iostream>

#include "common.hpp"
#include "core/registry.hpp"

using namespace tsched;
using namespace tsched::bench;

int main(int argc, char** argv) {
    const Args args(argc, argv);
    BenchConfig config;
    config.experiment = "E14";
    config.title = "survey: all schedulers across regimes (random graphs, n=100, P=8)";
    config.axis = "scheduler";
    config.algos = scheduler_names();
    config.trials = 10;
    apply_common_flags(config, args);
    print_banner(config);

    struct Regime {
        const char* label;
        double ccr;
        double beta;
    };
    const std::vector<Regime> regimes = {
        {"het ccr=1", 1.0, 1.0},
        {"het ccr=5", 5.0, 1.0},
        {"homog ccr=1", 1.0, 0.0},
    };

    const auto schedulers = make_schedulers(config.algos);
    std::vector<PointResult> results;
    for (std::size_t r = 0; r < regimes.size(); ++r) {
        workload::InstanceParams params;
        params.shape = workload::Shape::kLayered;
        params.size = 100;
        params.num_procs = 8;
        params.ccr = regimes[r].ccr;
        params.beta = regimes[r].beta;
        results.push_back(
            run_point(params, schedulers, config.trials, mix_seed(config.seed, r)));
        if (results.back().invalid_schedules > 0) {
            std::cerr << "ERROR: invalid schedules in regime " << regimes[r].label << '\n';
            return 1;
        }
    }

    std::vector<std::string> headers{config.axis};
    for (const auto& regime : regimes) headers.push_back(std::string("SLR ") + regime.label);
    headers.push_back("time ms");
    Table table(std::move(headers));
    for (const auto& algo : config.algos) {
        table.new_row().add(algo);
        double time_ms = 0.0;
        for (std::size_t r = 0; r < regimes.size(); ++r) {
            const auto& agg = results[r].agg.at(algo);
            table.add(agg.slr.mean(), 3);
            time_ms += agg.sched_time_ms.mean();
        }
        table.add(time_ms / static_cast<double>(regimes.size()), 3);
    }
    std::cout << "-- mean SLR per regime + mean scheduling time --\n";
    table.print(std::cout);
    if (!config.csv_path.empty() && !table.write_csv(config.csv_path)) {
        std::cerr << "warning: could not write " << config.csv_path << '\n';
    }
    std::cout << '\n';
    return 0;
}
