// E17 — serving core under request streams (bench_serve).
//
// Replays generated .tsr request streams through the ServeEngine and sweeps
// batch size x cache capacity x repeat-fraction, reporting QPS, latency
// p50/p95/p99, and cache hit rate per point (EXPERIMENTS.md E17).
//
// Protocol: every point materializes its requests before the clock starts
// and replays the stream --epochs times against one persistent engine
// (steady-state serving; see serve/replay.hpp).  The stream itself carries
// an exact repeat fraction, so single-epoch numbers are the cold-cache view
// and multi-epoch numbers the steady-state view.
//
//   --requests=N         stream length (default 64)
//   --n=N                instance size (default 150)
//   --procs=P            processors (default 8)
//   --algo=NAME          scheduler under service (default ils-d)
//   --threads=T          serving pool workers (default 0 = hardware)
//   --epochs=E           passes per measurement (default 2)
//   --batches=a,b        batch sizes to sweep (default 1,8,32)
//   --capacities=a,b     cache capacities to sweep (default 8,1024)
//   --repeat-fracs=a,b   repeat fractions to sweep (default 0,0.5,0.9)
//   --seed=S             trace generation seed (default 2007)
//   --csv=PATH           also write the sweep table as CSV
//   --metrics-out=PATH   append each sweep point's engine obs metrics
//                        document (obs/export.hpp JSON) as one JSONL line
//
//   --check              acceptance gate (registered as ctest bench_serve_check):
//                        1. cache-hit schedules are bit-identical (same TSS
//                           bytes, same object) to cold-computed ones;
//                        2. cache-on serving equals cache-off serving
//                           request-for-request;
//                        3. concurrent identical requests coalesce onto one
//                           computation;
//                        4. a 50%-repeat stream serves >= 2x the QPS of
//                           --cache=off at steady state (2 epochs; the ideal
//                           ratio there is 4x, so the gate has 2x headroom);
//                        5. LatencyHistogram percentiles of the replayed
//                           stream sit within kMaxRelativeError of the exact
//                           nearest-rank percentiles of the same latencies
//                           (the obs error bound, validated on live data).
//
// Exit status: 0 success (check included), 1 check failure, 2 usage errors.
#include <algorithm>
#include <cmath>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/registry.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "sched/schedule_io.hpp"
#include "serve/replay.hpp"
#include "util/stats.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace {

using namespace tsched;

struct ServeBenchConfig {
    std::size_t requests = 64;
    std::size_t n = 150;
    std::size_t procs = 8;
    std::string algo = "ils-d";
    std::size_t threads = 0;
    std::size_t epochs = 2;
    std::vector<std::size_t> batches = {1, 8, 32};
    std::vector<std::size_t> capacities = {8, 1024};
    std::vector<double> repeat_fracs = {0.0, 0.5, 0.9};
    std::uint64_t seed = 2007;
    std::string csv_path;
    std::string metrics_path;
};

serve::TraceGenParams trace_params(const ServeBenchConfig& config, double repeat_frac) {
    serve::TraceGenParams params;
    params.requests = config.requests;
    params.repeat_frac = repeat_frac;
    params.algos = {config.algo};
    params.size = config.n;
    params.procs = config.procs;
    params.seed = config.seed;
    return params;
}

int run_sweep(const ServeBenchConfig& config) {
    std::cout << "== E17: serving core (" << config.algo << ", n=" << config.n << ", P="
              << config.procs << ", " << config.requests << " requests x " << config.epochs
              << " epochs, threads=" << (config.threads ? std::to_string(config.threads)
                                                        : std::string("hw"))
              << ") ==\n";
    ThreadPool pool(config.threads);
    Table table({"repeat", "capacity", "batch", "qps", "p50 ms", "p95 ms", "p99 ms",
                 "p99.9 ms", "hit %", "evict"});
    std::ofstream metrics_out;
    if (!config.metrics_path.empty()) {
        metrics_out.open(config.metrics_path, std::ios::trunc);
        if (!metrics_out)
            std::cerr << "bench_serve: could not open " << config.metrics_path << '\n';
    }
    for (const double frac : config.repeat_fracs) {
        const auto trace = serve::generate_trace(trace_params(config, frac));
        for (const std::size_t capacity : config.capacities) {
            for (const std::size_t batch : config.batches) {
                serve::ReplayOptions options;
                options.config.cache_capacity = capacity;
                options.batch = batch;
                options.epochs = config.epochs;
                const auto report = serve::replay_trace(trace, options, pool);
                table.new_row()
                    .add(frac, 2)
                    .add(capacity)
                    .add(batch)
                    .add(report.qps, 1)
                    .add(report.latency_p50_ms, 3)
                    .add(report.latency_p95_ms, 3)
                    .add(report.latency_p99_ms, 3)
                    .add(report.latency_p999_ms, 3)
                    .add(report.stats.hit_rate() * 100.0, 1)
                    .add(static_cast<std::size_t>(report.stats.cache.evictions));
                if (metrics_out.is_open())
                    metrics_out << obs::to_json(report.metrics) << '\n';
            }
        }
    }
    // Cache-off reference row (repeat fraction 0.5, largest batch).
    {
        const auto trace = serve::generate_trace(trace_params(config, 0.5));
        serve::ReplayOptions options;
        options.config.enable_cache = false;
        options.config.enable_dedup = false;
        options.batch = config.batches.back();
        options.epochs = config.epochs;
        const auto report = serve::replay_trace(trace, options, pool);
        table.new_row()
            .add("0.50*")
            .add("off")
            .add(options.batch)
            .add(report.qps, 1)
            .add(report.latency_p50_ms, 3)
            .add(report.latency_p95_ms, 3)
            .add(report.latency_p99_ms, 3)
            .add(report.latency_p999_ms, 3)
            .add(0.0, 1)
            .add(std::size_t{0});
    }
    std::cout << table.to_markdown() << "(* = cache off)\n";
    if (!config.csv_path.empty() && !table.write_csv(config.csv_path))
        std::cerr << "bench_serve: could not write " << config.csv_path << '\n';
    return 0;
}

int fail(const std::string& what) {
    std::cout << "check: FAIL — " << what << '\n';
    return 1;
}

int run_check(const ServeBenchConfig& config) {
    ThreadPool pool(config.threads);
    const auto params = trace_params(config, 0.5);
    const auto trace = serve::generate_trace(params);

    // 1. Cache hits are bit-identical to cold runs: serve every distinct
    //    request twice through a caching engine and compare the hit against
    //    an engine-free cold computation, byte for byte through the TSS
    //    serializer.
    {
        serve::ServeConfig cfg;
        serve::ServeEngine engine(cfg, pool);
        const auto scheduler = make_scheduler(config.algo);
        std::set<std::uint64_t> seen;
        for (const serve::TraceRequest& tr : trace) {
            auto request = serve::materialize(tr);
            if (!seen.insert(serve::fingerprint_request(request)).second) continue;
            const auto cold_text = to_tss(scheduler->schedule(*request.problem));
            const auto first = engine.serve(request);
            const auto second = engine.serve(request);
            if (!second.cache_hit) return fail("second serve of an identical request missed");
            if (first.schedule != second.schedule)
                return fail("cache hit returned a different object than the cold run");
            if (to_tss(*second.schedule) != cold_text)
                return fail("cached schedule is not bit-identical to the cold computation");
        }
        std::cout << "check: " << seen.size()
                  << " distinct requests: hits bit-identical to cold runs\n";
    }

    // 2. Cache-on serving equals cache-off serving, request for request.
    {
        std::vector<serve::ScheduleRequest> prepared;
        for (const serve::TraceRequest& tr : trace) prepared.push_back(serve::materialize(tr));
        serve::ServeConfig on;
        serve::ServeConfig off;
        off.enable_cache = false;
        off.enable_dedup = false;
        serve::ServeEngine engine_on(on, pool);
        serve::ServeEngine engine_off(off, pool);
        const auto results_on = engine_on.run_batch(prepared);
        const auto results_off = engine_off.run_batch(prepared);
        for (std::size_t i = 0; i < prepared.size(); ++i) {
            if (to_tss(*results_on[i].schedule) != to_tss(*results_off[i].schedule))
                return fail("cache-on and cache-off disagree on request " + std::to_string(i));
        }
        std::cout << "check: cache-on == cache-off on all " << prepared.size() << " requests\n";
    }

    // 3. Concurrent identical requests coalesce onto one computation.
    {
        serve::ServeConfig cfg;
        serve::ServeEngine engine(cfg, pool);
        std::vector<serve::ScheduleRequest> burst(16, serve::materialize(trace.front()));
        const auto results = engine.run_batch(std::move(burst));
        const auto stats = engine.stats();
        if (stats.computed != 1)
            return fail("burst of 16 identical requests ran " + std::to_string(stats.computed) +
                        " computations (want 1)");
        for (const auto& r : results)
            if (!r.schedule) return fail("burst request came back without a schedule");
        if (stats.coalesced + stats.cache_hits != 15)
            return fail("burst accounting is off: " + std::to_string(stats.coalesced) +
                        " coalesced + " + std::to_string(stats.cache_hits) + " hits != 15");
        std::cout << "check: 16 concurrent identical requests -> 1 computation ("
                  << stats.coalesced << " coalesced, " << stats.cache_hits << " cache hits)\n";
    }

    // 4. Steady-state QPS on the 50%-repeat stream: cache on vs off.
    {
        serve::ReplayOptions on;
        on.epochs = 2;
        on.batch = 16;
        serve::ReplayOptions off = on;
        off.config.enable_cache = false;
        off.config.enable_dedup = false;
        // Warm-up replay so first-touch effects (allocator, pool) hit
        // neither measured run.
        (void)serve::replay_trace(trace, off, pool);
        const auto report_off = serve::replay_trace(trace, off, pool);
        const auto report_on = serve::replay_trace(trace, on, pool);
        const double ratio = report_off.qps > 0.0 ? report_on.qps / report_off.qps : 0.0;
        std::cout.precision(1);
        std::cout << std::fixed;
        std::cout << "check: 50%-repeat stream, " << on.epochs << " epochs: cache-on "
                  << report_on.qps << " qps (hit rate "
                  << report_on.stats.hit_rate() * 100 << "%), cache-off "
                  << report_off.qps << " qps -> " << ratio << "x\n";
        if (report_on.stats.hit_rate() < 0.70)
            return fail("steady-state hit rate below 70% on a 50%-repeat stream");
        if (ratio < 2.0) return fail("cache-on QPS is below 2x cache-off");
    }

    // 5. Histogram error bound on live data: push every replayed latency
    //    through an obs::LatencyHistogram and require each histogram
    //    percentile to sit within kMaxRelativeError of the exact
    //    nearest-rank percentile of the same multiset (both sides use the
    //    same rank rule, util/stats.hpp, so the comparison is exact-vs-
    //    approximate, never convention-vs-convention).
    {
        serve::ServeConfig cfg;
        serve::ServeEngine engine(cfg, pool);
        std::vector<serve::ScheduleRequest> prepared;
        for (const serve::TraceRequest& tr : trace) prepared.push_back(serve::materialize(tr));
        obs::LatencyHistogram hist;
        std::vector<double> latencies;
        for (std::size_t epoch = 0; epoch < 2; ++epoch) {
            for (const serve::ServeResult& r : engine.run_batch(prepared)) {
                latencies.push_back(r.latency_ms);
                hist.record(r.latency_ms);
            }
        }
        std::sort(latencies.begin(), latencies.end());
        const obs::HistogramSnapshot snap = hist.snapshot();
        if (snap.count != latencies.size())
            return fail("histogram count " + std::to_string(snap.count) + " != " +
                        std::to_string(latencies.size()) + " recorded latencies");
        if (snap.min != latencies.front() || snap.max != latencies.back())
            return fail("histogram min/max are not the exact extremes");
        const double tol = obs::LatencyHistogram::kMaxRelativeError;
        for (const double q : {0.50, 0.95, 0.99, 0.999}) {
            const double exact = quantile_nearest_rank(latencies, q);
            const double approx = snap.quantile(q);
            if (std::abs(approx - exact) > tol * exact) {
                std::ostringstream os;
                os.precision(9);
                os << "histogram q" << q << " = " << approx << " strays beyond "
                   << tol * 100 << "% of exact " << exact;
                return fail(os.str());
            }
        }
        std::cout << "check: histogram p50/p95/p99/p99.9 within "
                  << tol * 100 << "% of exact nearest-rank over "
                  << latencies.size() << " latencies\n";
    }

    std::cout << "check: OK\n";
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    Args args(argc, argv);
    try {
        args.check_known({"requests", "n", "procs", "algo", "threads", "epochs", "batches",
                          "capacities", "repeat-fracs", "seed", "csv", "metrics-out", "check",
                          "help", "version"});
    } catch (const std::exception& e) {
        std::cerr << "bench_serve: " << e.what() << '\n';
        return 2;
    }
    if (args.has("version")) {
        std::cout << "bench_serve 1.0.0\n";
        return 0;
    }
    if (args.has("help")) {
        std::cout << "usage: bench_serve [--check] [--requests=N] [--n=N] [--procs=P]\n"
                     "                   [--algo=NAME] [--threads=T] [--epochs=E]\n"
                     "                   [--batches=a,b] [--capacities=a,b]\n"
                     "                   [--repeat-fracs=a,b] [--seed=S] [--csv=PATH]\n"
                     "                   [--metrics-out=PATH]\n";
        return 0;
    }

    ServeBenchConfig config;
    config.requests = static_cast<std::size_t>(args.get_int("requests", 64));
    config.n = static_cast<std::size_t>(args.get_int("n", 150));
    config.procs = static_cast<std::size_t>(args.get_int("procs", 8));
    config.algo = args.get_string("algo", "ils-d");
    config.threads = static_cast<std::size_t>(args.get_int("threads", 0));
    config.epochs = static_cast<std::size_t>(args.get_int("epochs", 2));
    config.seed = static_cast<std::uint64_t>(args.get_int("seed", 2007));
    config.csv_path = args.get_string("csv", "");
    config.metrics_path = args.get_string("metrics-out", "");
    config.batches.clear();
    for (const auto b : args.get_int_list("batches", {1, 8, 32}))
        config.batches.push_back(static_cast<std::size_t>(b));
    config.capacities.clear();
    for (const auto c : args.get_int_list("capacities", {8, 1024}))
        config.capacities.push_back(static_cast<std::size_t>(c));
    config.repeat_fracs = args.get_double_list("repeat-fracs", {0.0, 0.5, 0.9});

    try {
        if (args.has("check")) return run_check(config);
        return run_sweep(config);
    } catch (const std::exception& e) {
        std::cerr << "bench_serve: " << e.what() << '\n';
        return 2;
    }
}
