// E17 — serving core under request streams (bench_serve).
//
// Replays generated .tsr request streams through the ServeEngine and sweeps
// batch size x cache capacity x repeat-fraction, reporting QPS, latency
// p50/p95/p99, and cache hit rate per point (EXPERIMENTS.md E17).
//
// Protocol: every point materializes its requests before the clock starts
// and replays the stream --epochs times against one persistent engine
// (steady-state serving; see serve/replay.hpp).  The stream itself carries
// an exact repeat fraction, so single-epoch numbers are the cold-cache view
// and multi-epoch numbers the steady-state view.
//
//   --requests=N         stream length (default 64)
//   --n=N                instance size (default 150)
//   --procs=P            processors (default 8)
//   --algo=NAME          scheduler under service (default ils-d)
//   --threads=T          serving pool workers (default 0 = hardware)
//   --epochs=E           passes per measurement (default 2)
//   --batches=a,b        batch sizes to sweep (default 1,8,32)
//   --capacities=a,b     cache capacities to sweep (default 8,1024)
//   --repeat-fracs=a,b   repeat fractions to sweep (default 0,0.5,0.9)
//   --seed=S             trace generation seed (default 2007)
//   --csv=PATH           also write the sweep table as CSV
//   --metrics-out=PATH   append each sweep point's engine obs metrics
//                        document (obs/export.hpp JSON) as one JSONL line
//
//   --check              acceptance gate (registered as ctest bench_serve_check):
//                        1. cache-hit schedules are bit-identical (same TSS
//                           bytes, same object) to cold-computed ones;
//                        2. cache-on serving equals cache-off serving
//                           request-for-request;
//                        3. concurrent identical requests coalesce onto one
//                           computation;
//                        4. a 50%-repeat stream serves >= 2x the QPS of
//                           --cache=off at steady state (2 epochs; the ideal
//                           ratio there is 4x, so the gate has 2x headroom);
//                        5. LatencyHistogram percentiles of the replayed
//                           stream sit within kMaxRelativeError of the exact
//                           nearest-rank percentiles of the same latencies
//                           (the obs error bound, validated on live data);
//                        6. overload semantics are deterministic: with every
//                           computation frozen at the chaos gate, a
//                           saturating burst's outcome sequence is a pure
//                           function of submission order — bit-identical
//                           across reruns and pool widths (2 vs 8 workers)
//                           for reject-new, drop-oldest, and degrade;
//                        7. outcome accounting balances under a
//                           deterministic fault storm: once every future is
//                           resolved, ok + shed + degraded + timed_out +
//                           draining + failed == requests, and the failure
//                           count equals the fp-keyed prediction.
//
//   --chaos              deterministic chaos battery (serve/chaos.hpp): burst
//                        freezes per shed policy, a deadline-expiry cascade,
//                        an fp-keyed stall/throw/submit-fail storm, and a
//                        drain-under-fire teardown.  Output carries no
//                        timings, so two runs (any --threads) byte-compare
//                        equal — tools/serve_chaos_smoke.sh gates exactly
//                        that.
//
//   --net                E21: network serving sweep — an in-process
//                        ServeServer on an ephemeral loopback port, replayed
//                        over --conns=a,b concurrent connections (window
//                        --window pipelined requests each) per repeat
//                        fraction.  With --json=PATH also measures the
//                        steady-state serve perf point
//                        {"schema":1,"serve":{qps,p50_ms,p99_ms,...}} that
//                        tools/perf_check.sh gates in CI.
//
//   --net-check          wire acceptance gates (ctest bench_net_check):
//                        N1. accounting identity over 8 live connections:
//                            ok+shed+degraded+timed_out+draining+failed ==
//                            requests, zero failures on healthy loopback;
//                        N2. schedule payloads byte-identical across reruns,
//                            pool widths (2 vs 8), and connection counts —
//                            the order-independent payload digest matches;
//                        N3. drain under client fire keeps the identity and
//                            the engine drain stays clean.
//
// Exit status: 0 success (check included), 1 check/chaos failure, 2 usage
// errors.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <future>
#include <iostream>
#include <memory>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common.hpp"
#include "core/registry.hpp"
#include "net/net_replay.hpp"
#include "net/server.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "sched/schedule_io.hpp"
#include "serve/chaos.hpp"
#include "serve/replay.hpp"
#include "serve/request.hpp"
#include "util/stats.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace {

using namespace tsched;

struct ServeBenchConfig {
    std::size_t requests = 64;
    std::size_t n = 150;
    std::size_t procs = 8;
    std::string algo = "ils-d";
    std::size_t threads = 0;
    std::size_t epochs = 2;
    std::vector<std::size_t> batches = {1, 8, 32};
    std::vector<std::size_t> capacities = {8, 1024};
    std::vector<double> repeat_fracs = {0.0, 0.5, 0.9};
    std::uint64_t seed = 2007;
    std::string csv_path;
    std::string metrics_path;
    std::vector<std::size_t> conns = {1, 4, 8};  ///< connection counts (--net sweep)
    std::size_t window = 16;                     ///< pipelined requests per connection
    std::string json_path;                       ///< serve perf point (perf_check.sh)
};

serve::TraceGenParams trace_params(const ServeBenchConfig& config, double repeat_frac) {
    serve::TraceGenParams params;
    params.requests = config.requests;
    params.repeat_frac = repeat_frac;
    params.algos = {config.algo};
    params.size = config.n;
    params.procs = config.procs;
    params.seed = config.seed;
    return params;
}

// ---------------------------------------------------------------------------
// Overload / chaos helpers (check gates 6-7 and the --chaos battery).

/// Materialize `count` fingerprint-distinct requests from a repeat-free
/// trace (generation with repeat_frac 0 is already distinct; the fingerprint
/// set makes that an invariant rather than an assumption).
std::vector<serve::ScheduleRequest> unique_stream(const ServeBenchConfig& config,
                                                  std::size_t count) {
    auto params = trace_params(config, 0.0);
    params.requests = count + 8;  // headroom against generator fp collisions
    const auto trace = serve::generate_trace(params);
    std::vector<serve::ScheduleRequest> out;
    std::set<std::uint64_t> seen;
    for (const serve::TraceRequest& tr : trace) {
        auto request = serve::materialize(tr);
        if (!seen.insert(serve::fingerprint_request(request)).second) continue;
        out.push_back(std::move(request));
        if (out.size() == count) break;
    }
    if (out.size() != count)
        throw std::runtime_error("unique_stream: trace yielded fewer distinct requests");
    return out;
}

/// "ok ok ok" — n copies of an outcome name, space-joined (expected-sequence
/// literals for the gate bursts).
std::string times(const char* word, std::size_t n) {
    std::string out;
    for (std::size_t i = 0; i < n; ++i) {
        if (!out.empty()) out += ' ';
        out += word;
    }
    return out;
}

std::uint64_t outcome_sum(const serve::EngineStats& stats) {
    return stats.ok + stats.shed + stats.degraded + stats.timed_out + stats.draining +
           stats.failed;
}

struct BurstResult {
    std::string sequence;     ///< outcome names in request order, space-joined
    serve::EngineStats stats;  ///< read after every future resolved
};

/// Freeze the world at the chaos gate, submit the burst serially, release,
/// gather.  While the gate is closed nothing can complete, so every
/// admission decision is a pure function of submission order and the outcome
/// sequence must be bit-identical across runs and pool widths.
BurstResult run_gate_burst(ThreadPool& pool, const std::vector<serve::ScheduleRequest>& requests,
                           serve::ShedPolicy policy, std::size_t max_inflight,
                           std::size_t max_pending) {
    auto chaos = std::make_shared<serve::DeterministicChaos>(
        serve::ChaosOptions{.gate_stalls = true, .gate_all = true});
    serve::ServeConfig cfg;
    cfg.max_inflight = max_inflight;
    cfg.max_pending = max_pending;
    cfg.shed_policy = policy;
    cfg.chaos = chaos;
    serve::ServeEngine engine(cfg, pool);
    std::vector<std::future<serve::ServeResult>> futures;
    futures.reserve(requests.size());
    for (const serve::ScheduleRequest& request : requests) futures.push_back(engine.submit(request));
    chaos->release_stalls();
    BurstResult out;
    for (auto& future : futures) {
        if (!out.sequence.empty()) out.sequence += ' ';
        out.sequence += serve::outcome_name(future.get().outcome);
    }
    out.stats = engine.stats();
    return out;
}

struct GateScenario {
    const char* name;
    serve::ShedPolicy policy;
    std::size_t max_inflight;
    std::size_t max_pending;
    std::size_t requests;
    std::string expect;
};

/// The three canonical saturating bursts and their exact outcome sequences.
/// reject-new {4,4} x16: 0-3 run, 4-7 queue (promoted after release), 8-15
/// shed.  drop-oldest: each of 8-15 evicts the oldest pending, so 4-11 shed
/// and 12-15 survive the queue.  degrade {4,0} x8: 4-7 answered inline by
/// the substitute algorithm.
std::vector<GateScenario> gate_scenarios() {
    return {
        {"reject-new", serve::ShedPolicy::kRejectNew, 4, 4, 16,
         times("ok", 8) + ' ' + times("shed", 8)},
        {"drop-oldest", serve::ShedPolicy::kDropOldest, 4, 4, 16,
         times("ok", 4) + ' ' + times("shed", 8) + ' ' + times("ok", 4)},
        {"degrade", serve::ShedPolicy::kDegrade, 4, 0, 8,
         times("ok", 4) + ' ' + times("degraded", 4)},
    };
}

serve::ChaosOptions storm_options(std::uint64_t seed) {
    return serve::ChaosOptions{.seed = seed,
                               .stall_prob = 0.2,
                               .stall_ms = 2.0,
                               .throw_prob = 0.25,
                               .submit_fail_prob = 0.15};
}

// ---------------------------------------------------------------------------
// E21: network serving (src/net front-end; in-process server, real sockets).

net::ServerConfig net_server_config(const ServeBenchConfig& config) {
    net::ServerConfig server;
    server.port = 0;  // ephemeral: the bench never collides with itself
    server.max_conns = 64;
    server.per_conn_queue = 64;
    return server;
}

net::NetReplayOptions net_replay_options(const ServeBenchConfig& config, std::uint16_t port,
                                         std::size_t conns) {
    net::NetReplayOptions options;
    options.port = port;
    options.conns = conns;
    options.window = config.window;
    options.epochs = config.epochs;
    options.client_name = "bench_serve";
    return options;
}

/// One steady-state measurement: fresh server on `pool`, full replay.
net::NetReplayReport measure_net(const ServeBenchConfig& config,
                                 const std::vector<serve::TraceRequest>& trace,
                                 std::size_t conns, ThreadPool& pool) {
    net::ServeServer server(net_server_config(config), pool);
    server.start();
    const auto report = replay_net(trace, net_replay_options(config, server.port(), conns));
    server.stop();
    return report;
}

int run_net_sweep(const ServeBenchConfig& config) {
    std::cout << "== E21: network serving (" << config.algo << ", n=" << config.n << ", P="
              << config.procs << ", " << config.requests << " requests x " << config.epochs
              << " epochs, window=" << config.window << ", threads="
              << (config.threads ? std::to_string(config.threads) : std::string("hw"))
              << ") ==\n";
    ThreadPool pool(config.threads);
    Table table({"repeat", "conns", "qps", "p50 ms", "p95 ms", "p99 ms", "ok", "shed",
                 "failed", "hit %"});
    for (const double frac : config.repeat_fracs) {
        const auto trace = serve::generate_trace(trace_params(config, frac));
        for (const std::size_t conns : config.conns) {
            const auto report = measure_net(config, trace, conns, pool);
            const double hit_rate =
                report.replies > 0
                    ? static_cast<double>(report.cache_hits) / static_cast<double>(report.replies)
                    : 0.0;
            table.new_row()
                .add(frac, 2)
                .add(conns)
                .add(report.qps, 1)
                .add(report.latency_p50_ms, 3)
                .add(report.latency_p95_ms, 3)
                .add(report.latency_p99_ms, 3)
                .add(static_cast<std::size_t>(report.ok))
                .add(static_cast<std::size_t>(report.shed))
                .add(static_cast<std::size_t>(report.failed))
                .add(hit_rate * 100.0, 1);
            if (!report.accounting_ok())
                std::cerr << "bench_serve: WARNING: accounting identity violated at conns="
                          << conns << '\n';
        }
    }
    std::cout << table.to_markdown();
    if (!config.csv_path.empty() && !table.write_csv(config.csv_path))
        std::cerr << "bench_serve: could not write " << config.csv_path << '\n';

    // The serve-path perf point tools/perf_check.sh gates: steady-state
    // replay at the largest swept connection count, 50% repeats.
    if (!config.json_path.empty()) {
        const auto trace = serve::generate_trace(trace_params(config, 0.5));
        const std::size_t conns = config.conns.back();
        const auto report = measure_net(config, trace, conns, pool);
        std::ostringstream os;
        os.precision(6);
        os << std::fixed;
        os << "{\"schema\":1,\"serve\":{\"qps\":" << report.qps << ",\"p50_ms\":"
           << report.latency_p50_ms << ",\"p99_ms\":" << report.latency_p99_ms << ",\"conns\":"
           << conns << ",\"window\":" << config.window << ",\"requests\":" << report.requests
           << "}}";
        std::ofstream out(config.json_path);
        out << os.str() << '\n';
        if (!out) {
            std::cerr << "bench_serve: could not write " << config.json_path << '\n';
            return 2;
        }
        std::cout << "serve point: " << os.str() << '\n';
    }
    return 0;
}

int net_fail(const std::string& what) {
    std::cout << "net-check: FAIL — " << what << '\n';
    return 1;
}

int run_net_check(const ServeBenchConfig& config) {
    const auto trace = serve::generate_trace(trace_params(config, 0.5));

    // Gate N1 — wire accounting identity: every request sent over N
    // concurrent connections is answered and classified; nothing is lost.
    {
        ThreadPool pool(config.threads);
        const auto report = measure_net(config, trace, 8, pool);
        if (!report.accounting_ok())
            return net_fail("accounting identity: ok+shed+degraded+timed_out+draining+failed "
                            "!= requests");
        if (report.replies != report.requests)
            return net_fail("replies " + std::to_string(report.replies) + " != requests " +
                            std::to_string(report.requests));
        if (report.failed != 0)
            return net_fail(std::to_string(report.failed) + " transport failures on a healthy "
                            "loopback");
        if (report.ok != report.requests)
            return net_fail("an unloaded server answered " + std::to_string(report.ok) + "/" +
                            std::to_string(report.requests) + " ok");
    }
    std::cout << "net-check: wire accounting identity holds over 8 connections\n";

    // Gate N2 — byte-identity across reruns and pool widths: the digest is
    // an order-independent fold of every schedule payload; equal traces must
    // produce equal digests no matter the pool width, connection count, or
    // arrival order (response payloads carry no timing).
    {
        std::uint64_t reference = 0;
        bool first = true;
        for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
            for (int rerun = 0; rerun < 2; ++rerun) {
                ThreadPool pool(threads);
                const auto report = measure_net(config, trace, rerun == 0 ? 8 : 4, pool);
                if (!report.payload_consistent)
                    return net_fail("equal fingerprints carried different schedule bytes");
                if (report.schedule_digest == 0)
                    return net_fail("schedule digest is zero (no payloads hashed?)");
                if (first) {
                    reference = report.schedule_digest;
                    first = false;
                } else if (report.schedule_digest != reference) {
                    return net_fail("schedule digest differs across reruns/pool widths");
                }
            }
        }
    }
    std::cout << "net-check: schedule payloads byte-identical across reruns and pool widths\n";

    // Gate N3 — drain under fire: stopping the server mid-replay must still
    // account for every request (delivered, typed kDraining, or counted
    // failed) and drain the engine cleanly.
    {
        ThreadPool pool(config.threads);
        net::ServeServer server(net_server_config(config), pool);
        server.start();
        auto options = net_replay_options(config, server.port(), 4);
        options.epochs = config.epochs * 4;  // enough traffic to straddle the stop
        auto replay = std::async(std::launch::async,
                                 [&] { return net::replay_net(trace, options); });
        // No sleep: stop immediately — the race lands differently every
        // run, but the identity below must hold wherever it lands.
        server.request_stop();
        const net::NetDrainReport drain = server.stop();
        const auto report = replay.get();
        if (!report.accounting_ok())
            return net_fail("accounting identity broken by drain-under-fire");
        if (!drain.engine.clean)
            return net_fail("engine drain not clean under client fire");
    }
    std::cout << "net-check: drain under fire keeps the accounting identity\n";

    std::cout << "net-check: PASS\n";
    return 0;
}

int run_sweep(const ServeBenchConfig& config) {
    std::cout << "== E17: serving core (" << config.algo << ", n=" << config.n << ", P="
              << config.procs << ", " << config.requests << " requests x " << config.epochs
              << " epochs, threads=" << (config.threads ? std::to_string(config.threads)
                                                        : std::string("hw"))
              << ") ==\n";
    ThreadPool pool(config.threads);
    Table table({"repeat", "capacity", "batch", "qps", "p50 ms", "p95 ms", "p99 ms",
                 "p99.9 ms", "hit %", "evict"});
    std::ofstream metrics_out;
    if (!config.metrics_path.empty()) {
        metrics_out.open(config.metrics_path, std::ios::trunc);
        if (!metrics_out)
            std::cerr << "bench_serve: could not open " << config.metrics_path << '\n';
    }
    for (const double frac : config.repeat_fracs) {
        const auto trace = serve::generate_trace(trace_params(config, frac));
        for (const std::size_t capacity : config.capacities) {
            for (const std::size_t batch : config.batches) {
                serve::ReplayOptions options;
                options.config.cache_capacity = capacity;
                options.batch = batch;
                options.epochs = config.epochs;
                const auto report = serve::replay_trace(trace, options, pool);
                table.new_row()
                    .add(frac, 2)
                    .add(capacity)
                    .add(batch)
                    .add(report.qps, 1)
                    .add(report.latency_p50_ms, 3)
                    .add(report.latency_p95_ms, 3)
                    .add(report.latency_p99_ms, 3)
                    .add(report.latency_p999_ms, 3)
                    .add(report.stats.hit_rate() * 100.0, 1)
                    .add(static_cast<std::size_t>(report.stats.cache.evictions));
                if (metrics_out.is_open())
                    metrics_out << obs::to_json(report.metrics) << '\n';
            }
        }
    }
    // Cache-off reference row (repeat fraction 0.5, largest batch).
    {
        const auto trace = serve::generate_trace(trace_params(config, 0.5));
        serve::ReplayOptions options;
        options.config.enable_cache = false;
        options.config.enable_dedup = false;
        options.batch = config.batches.back();
        options.epochs = config.epochs;
        const auto report = serve::replay_trace(trace, options, pool);
        table.new_row()
            .add("0.50*")
            .add("off")
            .add(options.batch)
            .add(report.qps, 1)
            .add(report.latency_p50_ms, 3)
            .add(report.latency_p95_ms, 3)
            .add(report.latency_p99_ms, 3)
            .add(report.latency_p999_ms, 3)
            .add(0.0, 1)
            .add(std::size_t{0});
    }
    std::cout << table.to_markdown() << "(* = cache off)\n";
    if (!config.csv_path.empty() && !table.write_csv(config.csv_path))
        std::cerr << "bench_serve: could not write " << config.csv_path << '\n';
    return 0;
}

int fail(const std::string& what) {
    std::cout << "check: FAIL — " << what << '\n';
    return 1;
}

int run_check(const ServeBenchConfig& config) {
    ThreadPool pool(config.threads);
    const auto params = trace_params(config, 0.5);
    const auto trace = serve::generate_trace(params);

    // 1. Cache hits are bit-identical to cold runs: serve every distinct
    //    request twice through a caching engine and compare the hit against
    //    an engine-free cold computation, byte for byte through the TSS
    //    serializer.
    {
        serve::ServeConfig cfg;
        serve::ServeEngine engine(cfg, pool);
        const auto scheduler = make_scheduler(config.algo);
        std::set<std::uint64_t> seen;
        for (const serve::TraceRequest& tr : trace) {
            auto request = serve::materialize(tr);
            if (!seen.insert(serve::fingerprint_request(request)).second) continue;
            const auto cold_text = to_tss(scheduler->schedule(*request.problem));
            const auto first = engine.serve(request);
            const auto second = engine.serve(request);
            if (!second.cache_hit) return fail("second serve of an identical request missed");
            if (first.schedule != second.schedule)
                return fail("cache hit returned a different object than the cold run");
            if (to_tss(*second.schedule) != cold_text)
                return fail("cached schedule is not bit-identical to the cold computation");
        }
        std::cout << "check: " << seen.size()
                  << " distinct requests: hits bit-identical to cold runs\n";
    }

    // 2. Cache-on serving equals cache-off serving, request for request.
    {
        std::vector<serve::ScheduleRequest> prepared;
        for (const serve::TraceRequest& tr : trace) prepared.push_back(serve::materialize(tr));
        serve::ServeConfig on;
        serve::ServeConfig off;
        off.enable_cache = false;
        off.enable_dedup = false;
        serve::ServeEngine engine_on(on, pool);
        serve::ServeEngine engine_off(off, pool);
        const auto results_on = engine_on.run_batch(prepared);
        const auto results_off = engine_off.run_batch(prepared);
        for (std::size_t i = 0; i < prepared.size(); ++i) {
            if (to_tss(*results_on[i].schedule) != to_tss(*results_off[i].schedule))
                return fail("cache-on and cache-off disagree on request " + std::to_string(i));
        }
        std::cout << "check: cache-on == cache-off on all " << prepared.size() << " requests\n";
    }

    // 3. Concurrent identical requests coalesce onto one computation.
    {
        serve::ServeConfig cfg;
        serve::ServeEngine engine(cfg, pool);
        std::vector<serve::ScheduleRequest> burst(16, serve::materialize(trace.front()));
        const auto results = engine.run_batch(std::move(burst));
        const auto stats = engine.stats();
        if (stats.computed != 1)
            return fail("burst of 16 identical requests ran " + std::to_string(stats.computed) +
                        " computations (want 1)");
        for (const auto& r : results)
            if (!r.schedule) return fail("burst request came back without a schedule");
        if (stats.coalesced + stats.cache_hits != 15)
            return fail("burst accounting is off: " + std::to_string(stats.coalesced) +
                        " coalesced + " + std::to_string(stats.cache_hits) + " hits != 15");
        std::cout << "check: 16 concurrent identical requests -> 1 computation ("
                  << stats.coalesced << " coalesced, " << stats.cache_hits << " cache hits)\n";
    }

    // 4. Steady-state QPS on the 50%-repeat stream: cache on vs off.
    {
        serve::ReplayOptions on;
        on.epochs = 2;
        on.batch = 16;
        serve::ReplayOptions off = on;
        off.config.enable_cache = false;
        off.config.enable_dedup = false;
        // Warm-up replay so first-touch effects (allocator, pool) hit
        // neither measured run.
        (void)serve::replay_trace(trace, off, pool);
        const auto report_off = serve::replay_trace(trace, off, pool);
        const auto report_on = serve::replay_trace(trace, on, pool);
        const double ratio = report_off.qps > 0.0 ? report_on.qps / report_off.qps : 0.0;
        std::cout.precision(1);
        std::cout << std::fixed;
        std::cout << "check: 50%-repeat stream, " << on.epochs << " epochs: cache-on "
                  << report_on.qps << " qps (hit rate "
                  << report_on.stats.hit_rate() * 100 << "%), cache-off "
                  << report_off.qps << " qps -> " << ratio << "x\n";
        if (report_on.stats.hit_rate() < 0.70)
            return fail("steady-state hit rate below 70% on a 50%-repeat stream");
        if (ratio < 2.0) return fail("cache-on QPS is below 2x cache-off");
    }

    // 5. Histogram error bound on live data: push every replayed latency
    //    through an obs::LatencyHistogram and require each histogram
    //    percentile to sit within kMaxRelativeError of the exact
    //    nearest-rank percentile of the same multiset (both sides use the
    //    same rank rule, util/stats.hpp, so the comparison is exact-vs-
    //    approximate, never convention-vs-convention).
    {
        serve::ServeConfig cfg;
        serve::ServeEngine engine(cfg, pool);
        std::vector<serve::ScheduleRequest> prepared;
        for (const serve::TraceRequest& tr : trace) prepared.push_back(serve::materialize(tr));
        obs::LatencyHistogram hist;
        std::vector<double> latencies;
        for (std::size_t epoch = 0; epoch < 2; ++epoch) {
            for (const serve::ServeResult& r : engine.run_batch(prepared)) {
                latencies.push_back(r.latency_ms);
                hist.record(r.latency_ms);
            }
        }
        std::sort(latencies.begin(), latencies.end());
        const obs::HistogramSnapshot snap = hist.snapshot();
        if (snap.count != latencies.size())
            return fail("histogram count " + std::to_string(snap.count) + " != " +
                        std::to_string(latencies.size()) + " recorded latencies");
        if (snap.min != latencies.front() || snap.max != latencies.back())
            return fail("histogram min/max are not the exact extremes");
        const double tol = obs::LatencyHistogram::kMaxRelativeError;
        for (const double q : {0.50, 0.95, 0.99, 0.999}) {
            const double exact = quantile_nearest_rank(latencies, q);
            const double approx = snap.quantile(q);
            if (std::abs(approx - exact) > tol * exact) {
                std::ostringstream os;
                os.precision(9);
                os << "histogram q" << q << " = " << approx << " strays beyond "
                   << tol * 100 << "% of exact " << exact;
                return fail(os.str());
            }
        }
        std::cout << "check: histogram p50/p95/p99/p99.9 within "
                  << tol * 100 << "% of exact nearest-rank over "
                  << latencies.size() << " latencies\n";
    }

    // 6. Deterministic overload semantics: for each shed policy, the frozen-
    //    gate burst's outcome sequence matches the hand-derived expectation
    //    and is bit-identical across reruns and across pool widths (2 vs 8
    //    workers) — admission decides while nothing can complete, so the
    //    pool's interleaving must not leak into who gets shed.
    {
        const auto burst = unique_stream(config, 16);
        ThreadPool narrow(2);
        ThreadPool wide(8);
        for (const GateScenario& sc : gate_scenarios()) {
            const std::vector<serve::ScheduleRequest> requests(burst.begin(),
                                                               burst.begin() + static_cast<std::ptrdiff_t>(sc.requests));
            const auto first = run_gate_burst(narrow, requests, sc.policy, sc.max_inflight,
                                              sc.max_pending);
            const auto rerun = run_gate_burst(narrow, requests, sc.policy, sc.max_inflight,
                                              sc.max_pending);
            const auto cross = run_gate_burst(wide, requests, sc.policy, sc.max_inflight,
                                              sc.max_pending);
            if (first.sequence != sc.expect)
                return fail(std::string(sc.name) + " burst produced [" + first.sequence +
                            "], expected [" + sc.expect + "]");
            if (rerun.sequence != first.sequence)
                return fail(std::string(sc.name) + " burst is not rerun-deterministic");
            if (cross.sequence != first.sequence)
                return fail(std::string(sc.name) +
                            " burst outcome sequence changed with the pool width");
            if (outcome_sum(first.stats) != first.stats.requests)
                return fail(std::string(sc.name) + " burst accounting is off: outcome sum " +
                            std::to_string(outcome_sum(first.stats)) + " != " +
                            std::to_string(first.stats.requests) + " requests");
            if (first.stats.admission.inflight_peak > sc.max_inflight)
                return fail(std::string(sc.name) + " burst exceeded the inflight budget: peak " +
                            std::to_string(first.stats.admission.inflight_peak));
        }
        std::cout << "check: overload outcome sequences bit-identical across reruns and "
                     "pool widths (reject-new, drop-oldest, degrade)\n";
    }

    // 7. Outcome accounting balances under a deterministic fault storm.
    //    Faults are fp-keyed (serve/chaos.hpp rule 1), so exactly the
    //    requests whose fingerprint is cursed with a scheduler throw or a
    //    pool-handoff failure must fail — whether they computed, retried, or
    //    coalesced onto the cursed computation — and everything else is ok.
    {
        auto chaos = std::make_shared<serve::DeterministicChaos>(storm_options(config.seed));
        serve::ServeConfig cfg;
        cfg.chaos = chaos;
        serve::ServeEngine engine(cfg, pool);
        std::vector<serve::ScheduleRequest> prepared;
        for (const serve::TraceRequest& tr : trace) prepared.push_back(serve::materialize(tr));
        std::size_t expect_failed = 0;
        for (const serve::ScheduleRequest& request : prepared) {
            const auto fp = serve::fingerprint_request(request);
            if (chaos->will_fail_submit(fp) || chaos->will_throw(fp)) ++expect_failed;
        }
        std::size_t failed = 0;
        std::size_t served = 0;
        std::vector<std::future<serve::ServeResult>> futures;
        for (const serve::ScheduleRequest& request : prepared) {
            try {
                futures.push_back(engine.submit(request));
            } catch (const std::exception&) {
                ++failed;  // submit-time pool failure; the future never left submit()
            }
        }
        for (auto& future : futures) {
            try {
                (void)future.get();
                ++served;
            } catch (const std::exception&) {
                ++failed;
            }
        }
        const auto stats = engine.stats();
        if (failed != expect_failed)
            return fail("fault storm failed " + std::to_string(failed) + " requests, fp-keyed "
                        "prediction says " + std::to_string(expect_failed));
        if (stats.requests != prepared.size())
            return fail("fault storm request accounting is off");
        if (outcome_sum(stats) != stats.requests)
            return fail("fault storm outcome sum " + std::to_string(outcome_sum(stats)) +
                        " != " + std::to_string(stats.requests) + " requests");
        std::cout << "check: fault storm over " << prepared.size() << " requests: " << served
                  << " ok, " << failed << " failed (= fp-keyed prediction); "
                     "ok+shed+degraded+timed_out+draining+failed == requests\n";
    }

    std::cout << "check: OK\n";
    return 0;
}

// ---------------------------------------------------------------------------
// --chaos: the deterministic chaos battery.  Every line this prints is a
// pure function of (algo, n, P, seed, requests) — no timings, no thread
// counts — so tools/serve_chaos_smoke.sh can run it twice (and at different
// --threads) and byte-compare the output.

int chaos_fail(const std::string& what) {
    std::cout << "chaos: FAIL — " << what << '\n';
    return 1;
}

int run_chaos(const ServeBenchConfig& config) {
    std::cout << "== serve chaos battery (" << config.algo << ", n=" << config.n << ", P="
              << config.procs << ", seed=" << config.seed << ", " << config.requests
              << " storm requests) ==\n";
    ThreadPool pool(config.threads);

    // 1. Burst freeze per shed policy: the frozen-gate outcome sequences.
    {
        const auto burst = unique_stream(config, 16);
        for (const GateScenario& sc : gate_scenarios()) {
            const std::vector<serve::ScheduleRequest> requests(burst.begin(),
                                                               burst.begin() + static_cast<std::ptrdiff_t>(sc.requests));
            const auto result = run_gate_burst(pool, requests, sc.policy, sc.max_inflight,
                                               sc.max_pending);
            if (result.sequence != sc.expect)
                return chaos_fail(std::string(sc.name) + " burst produced [" + result.sequence +
                                  "], expected [" + sc.expect + "]");
            if (outcome_sum(result.stats) != result.stats.requests)
                return chaos_fail(std::string(sc.name) + " burst accounting is off");
            if (result.stats.admission.inflight_peak > sc.max_inflight)
                return chaos_fail(std::string(sc.name) + " burst exceeded the inflight budget");
            std::cout << "chaos: burst freeze [" << sc.name << " inflight=" << sc.max_inflight
                      << " pending=" << sc.max_pending << "] ok=" << result.stats.ok
                      << " shed=" << result.stats.shed << " degraded=" << result.stats.degraded
                      << " sequence: " << result.sequence << '\n';
        }
    }

    // 2. Deadline-expiry cascade: a 1 ns budget is blown before any dequeue,
    //    so nothing ever starts — the runners skip at dequeue and the
    //    promotion loop flushes the queue, all as timed_out with no schedule.
    {
        auto requests = unique_stream(config, 8);
        for (serve::ScheduleRequest& request : requests) request.deadline_ms = 1e-9;
        serve::ServeConfig cfg;
        cfg.max_inflight = 2;
        cfg.max_pending = 6;
        serve::ServeEngine engine(cfg, pool);
        std::vector<std::future<serve::ServeResult>> futures;
        for (const serve::ScheduleRequest& request : requests)
            futures.push_back(engine.submit(request));
        std::size_t timed_out = 0;
        std::size_t with_schedule = 0;
        for (auto& future : futures) {
            const auto result = future.get();
            if (result.outcome == serve::ServeOutcome::kTimedOut) ++timed_out;
            if (result.schedule) ++with_schedule;
        }
        if (timed_out != requests.size())
            return chaos_fail("deadline cascade: " + std::to_string(timed_out) + "/" +
                              std::to_string(requests.size()) + " timed out");
        if (with_schedule != 0)
            return chaos_fail("deadline cascade: expired work still produced a schedule");
        const auto stats = engine.stats();
        if (outcome_sum(stats) != stats.requests)
            return chaos_fail("deadline cascade accounting is off");
        std::cout << "chaos: deadline cascade [inflight=2 pending=6 deadline=1ns] timed_out="
                  << timed_out << " with_schedule=" << with_schedule << '\n';
    }

    // 3. Fault storm over distinct fingerprints: every injection count is
    //    predictable from the fp-keyed predicates (a submit-cursed request
    //    never reaches compute, so its stall/throw curses never fire).
    {
        auto chaos = std::make_shared<serve::DeterministicChaos>(storm_options(config.seed));
        const auto requests = unique_stream(config, config.requests);
        std::uint64_t expect_stalls = 0;
        std::uint64_t expect_throws = 0;
        std::uint64_t expect_submit_failures = 0;
        for (const serve::ScheduleRequest& request : requests) {
            const auto fp = serve::fingerprint_request(request);
            if (chaos->will_fail_submit(fp)) {
                ++expect_submit_failures;
                continue;
            }
            if (chaos->will_stall(fp)) ++expect_stalls;
            if (chaos->will_throw(fp)) ++expect_throws;
        }
        serve::ServeConfig cfg;
        cfg.chaos = chaos;
        serve::ServeEngine engine(cfg, pool);
        std::size_t failed = 0;
        std::size_t served = 0;
        std::vector<std::future<serve::ServeResult>> futures;
        for (const serve::ScheduleRequest& request : requests) {
            try {
                futures.push_back(engine.submit(request));
            } catch (const std::exception&) {
                ++failed;
            }
        }
        for (auto& future : futures) {
            try {
                (void)future.get();
                ++served;
            } catch (const std::exception&) {
                ++failed;
            }
        }
        const auto stats = engine.stats();
        const auto injected = chaos->stats();
        if (failed != expect_throws + expect_submit_failures)
            return chaos_fail("fault storm failed " + std::to_string(failed) +
                              " requests, expected " +
                              std::to_string(expect_throws + expect_submit_failures));
        if (injected.stalls != expect_stalls || injected.throws != expect_throws ||
            injected.submit_failures != expect_submit_failures)
            return chaos_fail("injection counters drifted from the fp-keyed prediction");
        if (outcome_sum(stats) != stats.requests)
            return chaos_fail("fault storm accounting is off");
        std::cout << "chaos: fault storm [stall=0.20 throw=0.25 submit-fail=0.15] ok=" << served
                  << " failed=" << failed << " stalls=" << injected.stalls
                  << " throws=" << injected.throws
                  << " submit_failures=" << injected.submit_failures << '\n';
    }

    // 4. Drain under fire: two computations parked at the gate, two queued,
    //    four shed; drain(50 ms) flushes the queue as draining, times out on
    //    the parked pair, and expropriates their waiters — no future leaks.
    //    A submit after drain() resolves draining immediately.
    {
        auto chaos = std::make_shared<serve::DeterministicChaos>(
            serve::ChaosOptions{.gate_stalls = true, .gate_all = true});
        const auto requests = unique_stream(config, 9);
        serve::ServeConfig cfg;
        cfg.max_inflight = 2;
        cfg.max_pending = 2;
        cfg.chaos = chaos;
        serve::ServeEngine engine(cfg, pool);
        std::vector<std::future<serve::ServeResult>> futures;
        for (std::size_t i = 0; i < 8; ++i) futures.push_back(engine.submit(requests[i]));
        const auto report = engine.drain(50.0);
        futures.push_back(engine.submit(requests[8]));  // admission is closed
        std::size_t shed = 0;
        std::size_t draining = 0;
        for (auto& future : futures) {
            switch (future.get().outcome) {
                case serve::ServeOutcome::kShed: ++shed; break;
                case serve::ServeOutcome::kDraining: ++draining; break;
                default: return chaos_fail("drain under fire resolved an unexpected outcome");
            }
        }
        chaos->release_stalls();  // let the parked closures exit before ~ServeEngine
        if (report.clean || report.flushed_pending != 2 || report.forced_waiters != 2)
            return chaos_fail("drain report off: clean=" + std::string(report.clean ? "yes" : "no") +
                              " flushed_pending=" + std::to_string(report.flushed_pending) +
                              " forced_waiters=" + std::to_string(report.forced_waiters));
        if (shed != 4 || draining != 5)
            return chaos_fail("drain outcomes off: shed=" + std::to_string(shed) +
                              " draining=" + std::to_string(draining));
        std::cout << "chaos: drain under fire [inflight=2 pending=2 timeout=50ms] clean=no "
                     "flushed_pending=2 forced_waiters=2 shed=4 draining=5\n";
    }

    std::cout << "chaos: OK\n";
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    Args args(argc, argv);
    try {
        args.check_known({"requests", "n", "procs", "algo", "threads", "epochs", "batches",
                          "capacities", "repeat-fracs", "seed", "csv", "metrics-out", "check",
                          "chaos", "net", "net-check", "conns", "window", "json", "help",
                          "version"});
    } catch (const std::exception& e) {
        std::cerr << "bench_serve: " << e.what() << '\n';
        return 2;
    }
    if (args.has("version")) {
        std::cout << "bench_serve 1.0.0\n";
        return 0;
    }
    if (args.has("help")) {
        std::cout << "usage: bench_serve [--check] [--chaos] [--net] [--net-check]\n"
                     "                   [--requests=N] [--n=N] [--procs=P]\n"
                     "                   [--algo=NAME] [--threads=T] [--epochs=E]\n"
                     "                   [--batches=a,b] [--capacities=a,b]\n"
                     "                   [--repeat-fracs=a,b] [--conns=a,b] [--window=W]\n"
                     "                   [--seed=S] [--csv=PATH] [--json=PATH]\n"
                     "                   [--metrics-out=PATH]\n";
        return 0;
    }

    ServeBenchConfig config;
    config.requests = static_cast<std::size_t>(args.get_int("requests", 64));
    config.n = static_cast<std::size_t>(args.get_int("n", 150));
    config.procs = static_cast<std::size_t>(args.get_int("procs", 8));
    config.algo = args.get_string("algo", "ils-d");
    config.threads = static_cast<std::size_t>(args.get_int("threads", 0));
    config.epochs = static_cast<std::size_t>(args.get_int("epochs", 2));
    config.seed = static_cast<std::uint64_t>(args.get_int("seed", 2007));
    config.csv_path = args.get_string("csv", "");
    config.metrics_path = args.get_string("metrics-out", "");
    config.batches.clear();
    for (const auto b : args.get_int_list("batches", {1, 8, 32}))
        config.batches.push_back(static_cast<std::size_t>(b));
    config.capacities.clear();
    for (const auto c : args.get_int_list("capacities", {8, 1024}))
        config.capacities.push_back(static_cast<std::size_t>(c));
    config.repeat_fracs = args.get_double_list("repeat-fracs", {0.0, 0.5, 0.9});
    config.conns.clear();
    for (const auto c : args.get_int_list("conns", {1, 4, 8}))
        config.conns.push_back(static_cast<std::size_t>(c));
    config.window = static_cast<std::size_t>(args.get_int("window", 16));
    config.json_path = args.get_string("json", "");

    try {
        if (args.has("check")) return run_check(config);
        if (args.has("chaos")) return run_chaos(config);
        if (args.has("net-check")) return run_net_check(config);
        if (args.has("net")) return run_net_sweep(config);
        return run_sweep(config);
    } catch (const std::exception& e) {
        std::cerr << "bench_serve: " << e.what() << '\n';
        return 2;
    }
}
