// F1 — Fault injection: how much does a static schedule degrade when a
// processor fail-stops mid-run, and how much of that can online repair
// recover?  For each instance the busiest processor of each algorithm's
// schedule crashes at a fraction of the static makespan; every repair policy
// patches the run and we report realised/static makespan ratios (degradation,
// 1.0 = no loss), plus the static slack-robustness of each algorithm's
// schedules.
//
// Extra flags beyond the common set:
//   --n=N / --procs=P / --ccr=C / --beta=B   instance shape (100/8/1.0/0.5)
//   --frac=a,b,c    crash times as fractions of the makespan (0.25,0.5,0.75)
//   --policies=...  repair policies to compare (default: all registered)
//   --check         verify the acceptance contract instead of just printing:
//                   active policies produce lint-clean repairs, remap-pending
//                   and reschedule-suffix beat the do-nothing baseline on
//                   mean degradation at frac=0.5, and repeated same-seed runs
//                   are bit-identical; exits 1 on any violation
#include <cstdio>
#include <iostream>
#include <map>

#include "analysis/schedule_lints.hpp"
#include "common.hpp"
#include "core/registry.hpp"
#include "metrics/robustness.hpp"
#include "sim/faults.hpp"

using namespace tsched;
using namespace tsched::bench;

namespace {

std::string stat_cell(const RunningStats& stats) {
    char cell[64];
    std::snprintf(cell, sizeof(cell), "%.4f +-%.4f", stats.mean(), stats.ci95_halfwidth());
    return cell;
}

}  // namespace

int main(int argc, char** argv) {
    const Args args(argc, argv);
    const auto n = static_cast<std::size_t>(args.get_int("n", 100));
    const auto procs = static_cast<std::size_t>(args.get_int("procs", 8));
    const double ccr = args.get_double("ccr", 1.0);
    const double beta = args.get_double("beta", 0.5);
    const bool check = args.get_bool("check", false);

    BenchConfig config;
    config.experiment = "F1";
    config.title = "fault injection: degradation after a crash of the busiest processor (n=" +
                   std::to_string(n) + ", P=" + std::to_string(procs) + ")";
    config.axis = "frac";
    config.algos = {"heft", "ils", "ils-d"};
    config.trials = 10;
    apply_common_flags(config, args);
    print_banner(config);

    const auto fracs = args.get_double_list("frac", {0.25, 0.5, 0.75});
    const auto policy_names = args.get_string_list("policies", repair_policy_names());
    std::vector<RepairPolicyPtr> policies;
    policies.reserve(policy_names.size());
    for (const auto& name : policy_names) policies.push_back(make_repair_policy(name));
    const auto schedulers = make_schedulers(config.algos);

    // stats[frac][algo][policy]; summary[frac][policy] pools the algorithms.
    std::vector<std::vector<std::vector<RunningStats>>> stats(
        fracs.size(), std::vector<std::vector<RunningStats>>(
                          config.algos.size(), std::vector<RunningStats>(policies.size())));
    std::vector<RunningStats> slack(config.algos.size());
    std::size_t check_failures = 0;

    for (std::size_t trial = 0; trial < config.trials; ++trial) {
        workload::InstanceParams params;
        params.shape = workload::Shape::kLayered;
        params.size = n;
        params.num_procs = procs;
        params.ccr = ccr;
        params.beta = beta;
        const Problem problem = workload::make_instance(params, mix_seed(config.seed, trial));
        for (std::size_t s = 0; s < schedulers.size(); ++s) {
            const Schedule schedule = schedulers[s]->schedule(problem);
            slack[s].add(slack_robustness(schedule, problem));
            for (std::size_t f = 0; f < fracs.size(); ++f) {
                const sim::FaultPlan plan = sim::crash_busiest(schedule, fracs[f]);
                for (std::size_t p = 0; p < policies.size(); ++p) {
                    const sim::FaultReport report =
                        sim::simulate_faulty(schedule, problem, plan, *policies[p]);
                    stats[f][s][p].add(report.degradation);
                    if (!check) continue;
                    // Acceptance: every active repair is lint-clean, and the
                    // run is bit-identical when repeated.
                    if (policy_names[p] != "none") {
                        analysis::Diagnostics diags;
                        analysis::lint_schedule(report.repaired, problem, diags);
                        if (diags.has_errors()) {
                            ++check_failures;
                            std::cerr << "check: trial " << trial << " " << config.algos[s]
                                      << "/" << policy_names[p] << " frac " << fracs[f]
                                      << ": repaired schedule has lint errors\n"
                                      << analysis::render_text(diags);
                        }
                    }
                    const sim::FaultReport again =
                        sim::simulate_faulty(schedule, problem, plan, *policies[p]);
                    if (again.sim.makespan != report.sim.makespan ||
                        again.sim.finish_times != report.sim.finish_times ||
                        again.events != report.events ||
                        again.retries != report.retries ||
                        again.migrated_tasks != report.migrated_tasks ||
                        again.reexecuted_tasks != report.reexecuted_tasks ||
                        again.dropped_placements != report.dropped_placements ||
                        again.repair_latency != report.repair_latency) {
                        ++check_failures;
                        std::cerr << "check: trial " << trial << " " << config.algos[s] << "/"
                                  << policy_names[p] << " frac " << fracs[f]
                                  << ": repeated run is not bit-identical\n";
                    }
                }
            }
        }
    }

    for (std::size_t f = 0; f < fracs.size(); ++f) {
        std::vector<std::string> headers{"algorithm"};
        for (const auto& name : policy_names) headers.push_back(name);
        Table table(std::move(headers));
        for (std::size_t s = 0; s < config.algos.size(); ++s) {
            table.new_row().add(config.algos[s]);
            for (std::size_t p = 0; p < policies.size(); ++p) {
                table.add(stat_cell(stats[f][s][p]));
            }
        }
        std::printf("-- degradation, crash at %.2f x makespan (+-95%% CI) --\n", fracs[f]);
        table.print(std::cout);
        std::cout << '\n';
    }

    // Summary: crash fraction x policy, pooled over the algorithms.
    std::vector<std::string> headers{config.axis};
    for (const auto& name : policy_names) headers.push_back(name);
    Table summary(std::move(headers));
    for (std::size_t f = 0; f < fracs.size(); ++f) {
        char label[32];
        std::snprintf(label, sizeof(label), "%.2f", fracs[f]);
        summary.new_row().add(std::string(label));
        for (std::size_t p = 0; p < policies.size(); ++p) {
            RunningStats pooled;
            for (std::size_t s = 0; s < config.algos.size(); ++s) {
                pooled.add(stats[f][s][p].mean());
            }
            summary.add(stat_cell(pooled));
        }
    }
    std::cout << "-- mean degradation across algorithms --\n";
    summary.print(std::cout);
    if (!config.csv_path.empty() && !summary.write_csv(config.csv_path)) {
        std::cerr << "warning: could not write " << config.csv_path << '\n';
    }
    std::cout << '\n';

    Table slack_table({"algorithm", "slack robustness"});
    for (std::size_t s = 0; s < config.algos.size(); ++s) {
        slack_table.new_row().add(config.algos[s]).add(stat_cell(slack[s]));
    }
    std::cout << "-- static slack robustness (mean normalised placement slack) --\n";
    slack_table.print(std::cout);
    std::cout << '\n';

    if (check) {
        // The repairing policies must beat the do-nothing baseline on mean
        // degradation at every swept crash fraction.
        auto policy_index = [&](const std::string& name) {
            for (std::size_t p = 0; p < policy_names.size(); ++p) {
                if (policy_names[p] == name) return static_cast<std::ptrdiff_t>(p);
            }
            return std::ptrdiff_t{-1};
        };
        const std::ptrdiff_t none_i = policy_index("none");
        for (const char* contender : {"remap-pending", "reschedule-suffix"}) {
            const std::ptrdiff_t c_i = policy_index(contender);
            if (none_i < 0 || c_i < 0) continue;
            for (std::size_t f = 0; f < fracs.size(); ++f) {
                double none_mean = 0.0;
                double c_mean = 0.0;
                for (std::size_t s = 0; s < config.algos.size(); ++s) {
                    none_mean += stats[f][s][static_cast<std::size_t>(none_i)].mean();
                    c_mean += stats[f][s][static_cast<std::size_t>(c_i)].mean();
                }
                if (c_mean > none_mean + 1e-9) {
                    ++check_failures;
                    std::cerr << "check: " << contender << " mean degradation "
                              << c_mean / static_cast<double>(config.algos.size())
                              << " exceeds none's "
                              << none_mean / static_cast<double>(config.algos.size())
                              << " at frac " << fracs[f] << '\n';
                }
            }
        }
        if (check_failures > 0) {
            std::cerr << "check: FAILED (" << check_failures << " violation(s))\n";
            return 1;
        }
        std::cout << "check: OK\n";
    }
    return 0;
}
