// E12 — Heuristics vs search: how much schedule quality the search-based
// methods (local-search refinement, genetic algorithm) buy over the
// one-shot list heuristics, and at what scheduling-time cost.  The classic
// "GA beats list scheduling given 100x the time" trade-off table.
#include "common.hpp"

using namespace tsched;
using namespace tsched::bench;

int main(int argc, char** argv) {
    const Args args(argc, argv);
    BenchConfig config;
    config.experiment = "E12";
    config.title = "heuristics vs search-based schedulers: quality and cost (P=8)";
    config.axis = "workload";
    config.algos = {"heft", "heft+ls", "ils", "ils+ls", "ga"};
    config.trials = 10;
    apply_common_flags(config, args);

    std::vector<SweepPoint> points;
    for (const double ccr : args.get_double_list("ccr", {1.0, 5.0})) {
        for (const auto n : args.get_int_list("sizes", {50, 100})) {
            workload::InstanceParams params;
            params.shape = workload::Shape::kLayered;
            params.size = static_cast<std::size_t>(n);
            params.num_procs = 8;
            params.ccr = ccr;
            params.beta = 0.5;
            char label[48];
            std::snprintf(label, sizeof(label), "n=%lld ccr=%.1f",
                          static_cast<long long>(n), ccr);
            points.push_back({label, params});
        }
    }
    run_sweep(config, points, {Metric::kSlr, Metric::kSchedTimeMs});
    return 0;
}
