// E15 — Optimality gap: how close the heuristics come to the *proven*
// optimum on instances small enough for exact branch-and-bound.  Reports the
// mean makespan/optimal ratio and the fraction of instances solved exactly,
// per scheduler.
//
// Note: the exact reference searches duplication-free schedules, so the
// duplication-based algorithms (ils-d) can — and at high CCR do — undercut
// it (ratios below 1.0), which quantifies exactly what duplication buys.
#include <iostream>

#include "common.hpp"
#include "core/registry.hpp"
#include "sched/optimal.hpp"
#include "sched/validate.hpp"

using namespace tsched;
using namespace tsched::bench;

int main(int argc, char** argv) {
    const Args args(argc, argv);
    BenchConfig config;
    config.experiment = "E15";
    config.title = "optimality gap on small instances (exact branch-and-bound reference)";
    config.axis = "instance class";
    config.algos = {"ils", "ils-d", "heft", "cpop", "hcpt", "dls", "mcp"};
    config.trials = 15;
    apply_common_flags(config, args);
    print_banner(config);

    const auto max_nodes =
        static_cast<std::size_t>(args.get_int("max-nodes", 3'000'000));
    const BnbScheduler bnb(max_nodes);
    const auto schedulers = make_schedulers(config.algos);

    struct Point {
        const char* label;
        std::size_t n;
        std::size_t procs;
        double ccr;
    };
    const std::vector<Point> points = {
        {"n=7 P=2 ccr=1", 7, 2, 1.0},
        {"n=7 P=2 ccr=5", 7, 2, 5.0},
        {"n=8 P=2 ccr=1", 8, 2, 1.0},
        {"n=8 P=3 ccr=1", 8, 3, 1.0},
    };

    std::vector<std::string> headers{config.axis, "proven %"};
    for (const auto& algo : config.algos) headers.push_back(algo);
    Table table(std::move(headers));

    for (const auto& point : points) {
        std::vector<RunningStats> ratio(schedulers.size());
        std::vector<std::size_t> exact_hits(schedulers.size(), 0);
        std::size_t proven = 0;
        std::size_t used = 0;
        for (std::size_t trial = 0; trial < config.trials; ++trial) {
            workload::InstanceParams params;
            params.shape = workload::Shape::kLayered;
            params.size = point.n;
            params.num_procs = point.procs;
            params.ccr = point.ccr;
            params.beta = 1.0;
            const Problem problem =
                workload::make_instance(params, mix_seed(config.seed, trial * 31));
            const auto result = bnb.solve(problem);
            if (!result.proven_optimal) continue;  // skip unproven instances
            ++proven;
            ++used;
            const double opt = result.schedule.makespan();
            for (std::size_t s = 0; s < schedulers.size(); ++s) {
                const Schedule schedule = schedulers[s]->schedule(problem);
                if (!validate(schedule, problem)) {
                    std::cerr << "ERROR: invalid schedule from " << config.algos[s] << '\n';
                    return 1;
                }
                const double r = schedule.makespan() / opt;
                ratio[s].add(r);
                if (r <= 1.0 + 1e-9) ++exact_hits[s];
            }
        }
        table.new_row().add(point.label);
        char proven_cell[32];
        std::snprintf(proven_cell, sizeof(proven_cell), "%.0f",
                      100.0 * static_cast<double>(proven) /
                          static_cast<double>(config.trials));
        table.add(std::string(proven_cell));
        for (std::size_t s = 0; s < schedulers.size(); ++s) {
            char cell[64];
            std::snprintf(cell, sizeof(cell), "%.3f (%.0f%% opt)", ratio[s].mean(),
                          used > 0 ? 100.0 * static_cast<double>(exact_hits[s]) /
                                         static_cast<double>(used)
                                   : 0.0);
            table.add(std::string(cell));
        }
    }
    std::cout << "-- mean makespan/optimal ratio (and % of instances solved optimally) --\n";
    table.print(std::cout);
    if (!config.csv_path.empty() && !table.write_csv(config.csv_path)) {
        std::cerr << "warning: could not write " << config.csv_path << '\n';
    }
    std::cout << '\n';
    return 0;
}
