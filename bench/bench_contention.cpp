// E16 — Network contention study: replay every scheduler's decisions under
// the one-port contention model and report the realised/contention-free
// makespan inflation.  Schedulers that oversubscribe the network (many
// concurrent transfers) inflate most.  The measured result is
// counter-intuitive and worth the experiment: *duplication-based schedules
// inflate the most* — each duplicate pulls its own input copies (no
// multicast), roughly doubling the transfer count — so the duplication
// advantage seen under the contention-free model erodes on a one-port
// network.
#include <iostream>

#include "common.hpp"
#include "core/registry.hpp"
#include "sim/contention.hpp"
#include "sim/event_sim.hpp"

using namespace tsched;
using namespace tsched::bench;

int main(int argc, char** argv) {
    const Args args(argc, argv);
    BenchConfig config;
    config.experiment = "E16";
    config.title = "contention study: one-port realised/contention-free makespan (n=80, P=8)";
    config.axis = "CCR";
    config.algos = {"ils", "ils-d", "heft", "ca-heft", "cpop", "dsh"};
    config.trials = 15;
    apply_common_flags(config, args);
    print_banner(config);

    const auto ccrs = args.get_double_list("ccr", {0.5, 1.0, 2.0, 5.0});
    const auto schedulers = make_schedulers(config.algos);

    std::vector<std::string> headers{config.axis};
    for (const auto& algo : config.algos) headers.push_back(algo);
    Table inflation_table(headers);
    Table transfers_table(headers);

    for (const double ccr : ccrs) {
        std::vector<RunningStats> inflation(schedulers.size());
        std::vector<RunningStats> transfers(schedulers.size());
        for (std::size_t trial = 0; trial < config.trials; ++trial) {
            workload::InstanceParams params;
            params.shape = workload::Shape::kLayered;
            params.size = 80;
            params.num_procs = 8;
            params.ccr = ccr;
            params.beta = 0.5;
            const Problem problem =
                workload::make_instance(params, mix_seed(config.seed, trial));
            for (std::size_t s = 0; s < schedulers.size(); ++s) {
                const Schedule schedule = schedulers[s]->schedule(problem);
                const double free_ms = sim::simulate(schedule, problem).makespan;
                const auto contended = sim::simulate_contended(schedule, problem);
                inflation[s].add(contended.makespan / free_ms);
                transfers[s].add(static_cast<double>(contended.transfers));
            }
        }
        char label[32];
        std::snprintf(label, sizeof(label), "%.1f", ccr);
        inflation_table.new_row().add(std::string(label));
        transfers_table.new_row().add(std::string(label));
        for (std::size_t s = 0; s < schedulers.size(); ++s) {
            char cell[64];
            std::snprintf(cell, sizeof(cell), "%.3f +-%.3f", inflation[s].mean(),
                          inflation[s].ci95_halfwidth());
            inflation_table.add(std::string(cell));
            transfers_table.add(transfers[s].mean(), 1);
        }
    }
    std::cout << "-- mean contended/contention-free makespan ratio (+-95% CI) --\n";
    inflation_table.print(std::cout);
    std::cout << "\n-- mean cross-processor transfers per schedule --\n";
    transfers_table.print(std::cout);
    if (!config.csv_path.empty() && !inflation_table.write_csv(config.csv_path)) {
        std::cerr << "warning: could not write " << config.csv_path << '\n';
    }
    std::cout << '\n';
    return 0;
}
