// A1 — Ablation: ILS components (variance rank, OCT selection) and the
// classic HEFT rank variants, across the CCR axis.  Answers "which of the
// ILS changes buys the improvement, and where".
#include "common.hpp"

using namespace tsched;
using namespace tsched::bench;

int main(int argc, char** argv) {
    const Args args(argc, argv);
    BenchConfig config;
    config.experiment = "A1";
    config.title = "ablation: ILS components and HEFT rank variants vs CCR (n=100, P=8)";
    config.axis = "CCR";
    config.algos = {"ils", "ils-novar", "ils-nola", "ils-k2",
                    "heft", "heft-median", "heft-worst", "heft-best"};
    apply_common_flags(config, args);

    const auto ccrs = args.get_double_list("ccr", {0.5, 1.0, 2.0, 5.0, 10.0});
    std::vector<SweepPoint> points;
    for (const double ccr : ccrs) {
        workload::InstanceParams params;
        params.shape = workload::Shape::kLayered;
        params.size = 100;
        params.num_procs = 8;
        params.ccr = ccr;
        params.beta = 1.0;
        char label[32];
        std::snprintf(label, sizeof(label), "%.1f", ccr);
        points.push_back({label, params});
    }
    run_sweep(config, points, {Metric::kSlr});
    return 0;
}
