// E4 — Average speedup and efficiency vs processor count (the "speedup vs
// number of processors" figure).
//
// Random layered DAGs, n = 100, CCR = 1, beta = 0.5.
#include "common.hpp"
#include "core/registry.hpp"

using namespace tsched;
using namespace tsched::bench;

int main(int argc, char** argv) {
    const Args args(argc, argv);
    BenchConfig config;
    config.experiment = "E4";
    config.title = "average speedup & efficiency vs processors (random graphs, n=100)";
    config.axis = "procs";
    config.algos = default_comparison_set();
    apply_common_flags(config, args);

    const auto procs = args.get_int_list("procs", {2, 4, 8, 16, 32});
    const double ccr = args.get_double("ccr", 1.0);
    const double beta = args.get_double("beta", 0.5);

    std::vector<SweepPoint> points;
    for (const auto p : procs) {
        workload::InstanceParams params;
        params.shape = workload::Shape::kLayered;
        params.size = 100;
        params.num_procs = static_cast<std::size_t>(p);
        params.ccr = ccr;
        params.beta = beta;
        points.push_back({std::to_string(p), params});
    }
    run_sweep(config, points, {Metric::kSpeedup, Metric::kEfficiency});
    return 0;
}
