// E3 — Average SLR vs heterogeneity factor beta (the "SLR vs range
// percentage of computation costs" figure).  beta = 0 is the homogeneous
// extreme; beta -> 2 makes the same task up to ~3x faster on its best
// processor than its worst.
//
// Random layered DAGs, n = 100, P = 8, CCR = 1.
#include "common.hpp"
#include "core/registry.hpp"

using namespace tsched;
using namespace tsched::bench;

int main(int argc, char** argv) {
    const Args args(argc, argv);
    BenchConfig config;
    config.experiment = "E3";
    config.title = "average SLR vs heterogeneity beta (random layered graphs, n=100, P=8)";
    config.axis = "beta";
    config.algos = default_comparison_set();
    apply_common_flags(config, args);

    const auto betas = args.get_double_list("beta", {0.1, 0.25, 0.5, 0.75, 1.0, 1.5});
    const double ccr = args.get_double("ccr", 1.0);

    std::vector<SweepPoint> points;
    for (const double beta : betas) {
        workload::InstanceParams params;
        params.shape = workload::Shape::kLayered;
        params.size = 100;
        params.num_procs = 8;
        params.ccr = ccr;
        params.beta = beta;
        char label[32];
        std::snprintf(label, sizeof(label), "%.2f", beta);
        points.push_back({label, params});
    }
    run_sweep(config, points, {Metric::kSlr});
    return 0;
}
