// A2 — Ablation: insertion-based slot search vs end-of-queue placement, for
// both HEFT and ILS, across the CCR axis.  Insertion matters most when
// communication gaps open idle holes.
#include "common.hpp"

using namespace tsched;
using namespace tsched::bench;

int main(int argc, char** argv) {
    const Args args(argc, argv);
    BenchConfig config;
    config.experiment = "A2";
    config.title = "ablation: insertion-based vs end-of-queue placement (n=100, P=8)";
    config.axis = "CCR";
    config.algos = {"heft", "heft-noins", "ils", "ils-noins"};
    apply_common_flags(config, args);

    const auto ccrs = args.get_double_list("ccr", {0.5, 1.0, 2.0, 5.0, 10.0});
    std::vector<SweepPoint> points;
    for (const double ccr : ccrs) {
        workload::InstanceParams params;
        params.shape = workload::Shape::kLayered;
        params.size = 100;
        params.num_procs = 8;
        params.ccr = ccr;
        params.beta = 0.5;
        char label[32];
        std::snprintf(label, sizeof(label), "%.1f", ccr);
        points.push_back({label, params});
    }
    run_sweep(config, points, {Metric::kSlr});
    return 0;
}
