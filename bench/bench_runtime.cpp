// E10 — Scheduler running time (the "scheduling cost" table), via
// google-benchmark: wall-clock time to compute one schedule as a function of
// DAG size, per algorithm.
//
// The cheap list schedulers run up to n = 400; the clone-based duplication
// algorithms (ils-d, dsh, btdh) are quadratic-ish and stop at n = 200.
#include <benchmark/benchmark.h>

#include "core/registry.hpp"
#include "workload/instance.hpp"

namespace {

using namespace tsched;

void run_scheduler(benchmark::State& state, const std::string& name, std::size_t n) {
    workload::InstanceParams params;
    params.shape = workload::Shape::kLayered;
    params.size = n;
    params.num_procs = 8;
    params.ccr = 1.0;
    params.beta = 0.5;
    const Problem problem = workload::make_instance(params, 2007);
    const auto scheduler = make_scheduler(name);
    for (auto _ : state) {
        benchmark::DoNotOptimize(scheduler->schedule(problem).makespan());
    }
    state.SetLabel(name + " n=" + std::to_string(n));
}

void register_all() {
    const std::vector<std::string> fast{"ils", "heft", "cpop", "hcpt", "dls", "etf", "mcp"};
    const std::vector<std::string> heavy{"ils-d", "dsh", "btdh"};
    for (const auto& name : fast) {
        for (const std::size_t n : {50u, 100u, 200u, 400u}) {
            benchmark::RegisterBenchmark(
                (name + "/" + std::to_string(n)).c_str(),
                [name, n](benchmark::State& state) { run_scheduler(state, name, n); })
                ->Unit(benchmark::kMillisecond);
        }
    }
    for (const auto& name : heavy) {
        for (const std::size_t n : {50u, 100u, 200u}) {
            benchmark::RegisterBenchmark(
                (name + "/" + std::to_string(n)).c_str(),
                [name, n](benchmark::State& state) { run_scheduler(state, name, n); })
                ->Unit(benchmark::kMillisecond);
        }
    }
}

}  // namespace

int main(int argc, char** argv) {
    register_all();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
