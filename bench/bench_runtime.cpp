// E10 — Scheduler running time (the "scheduling cost" table), two modes:
//
// 1. Default: google-benchmark over algo x DAG-size, the interactive /
//    exploratory mode (all google-benchmark flags apply).
// 2. --json=PATH: the perf-trajectory mode.  Runs a fixed sweep (same
//    instance generator seed every time), records the mean wall-clock
//    scheduling time per (algo, n), and writes one JSON document that
//    tools/perf_check.sh diffs against the committed BENCH_runtime.json
//    baseline to catch scheduling-time regressions in CI.
//    Extra flags in this mode:
//      --max-n=N         drop sweep points above N tasks (CI smoke uses 100)
//      --min-time-ms=T   measure each point for at least T ms (default 200)
//      --algos=a,b,c     restrict the algorithm set
//
// Since the checkpoint/undo rewrite the duplication-based schedulers run the
// same n = 400 ceiling as the cheap list schedulers; the big-n hot-path work
// (CSR adjacency, bucketed timelines) extends the sweep to n = 50000 with
// per-point rep caps.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "util/args.hpp"
#include "util/stopwatch.hpp"
#include "workload/instance.hpp"

namespace {

using namespace tsched;

workload::InstanceParams runtime_params(std::size_t n) {
    workload::InstanceParams params;
    params.shape = workload::Shape::kLayered;
    params.size = n;
    params.num_procs = 8;
    params.ccr = 1.0;
    params.beta = 0.5;
    return params;
}

void run_scheduler(benchmark::State& state, const std::string& name, std::size_t n) {
    const Problem problem = workload::make_instance(runtime_params(n), 2007);
    const auto scheduler = make_scheduler(name);
    for (auto _ : state) {
        benchmark::DoNotOptimize(scheduler->schedule(problem).makespan());
    }
    state.SetLabel(name + " n=" + std::to_string(n));
}

const std::vector<std::string>& perf_algos() {
    // The speculation-heavy schedulers this PR series optimises, plus heft
    // as the list-scheduler reference point.
    static const std::vector<std::string> algos{"heft", "ils", "ils-d", "lheft", "dsh", "btdh"};
    return algos;
}

constexpr std::size_t kPerfSizes[] = {50, 100, 200, 400};

/// Big-n sweep points (the 10k–100k-task hot-path work).  Reps are capped so
/// the 50k duplication schedulers do not pin the sweep for minutes; the
/// 3-rep floor in measure_mean_ms still applies at the caps.
struct BigNPoint {
    std::size_t n;
    std::size_t max_reps;
};
constexpr BigNPoint kBigNPoints[] = {{2000, 12}, {10000, 6}, {50000, 3}};

void register_all() {
    for (const auto& name : perf_algos()) {
        for (const std::size_t n : kPerfSizes) {
            benchmark::RegisterBenchmark(
                (name + "/" + std::to_string(n)).c_str(),
                [name, n](benchmark::State& state) { run_scheduler(state, name, n); })
                ->Unit(benchmark::kMillisecond);
        }
    }
}

/// Measure mean scheduling time of one (algo, n) point: repeat until the
/// accumulated wall time reaches `min_time_ms` (at least 3 reps so a single
/// outlier cannot be the answer), never exceeding `max_reps` (big-n points
/// cap reps instead of time so the slowest schedulers stay bounded).
double measure_mean_ms(const Scheduler& scheduler, const Problem& problem, double min_time_ms,
                      std::size_t& reps_out,
                      std::size_t max_reps = std::numeric_limits<std::size_t>::max()) {
    // Warm-up rep: first-touch allocations should not count.
    (void)scheduler.schedule(problem).makespan();
    double total_ms = 0.0;
    std::size_t reps = 0;
    while ((reps < 3 || total_ms < min_time_ms) && reps < max_reps) {
        double elapsed_ms = 0.0;
        {
            const Stopwatch::Scoped timer(elapsed_ms);
            benchmark::DoNotOptimize(scheduler.schedule(problem).makespan());
        }
        total_ms += elapsed_ms;
        ++reps;
    }
    reps_out = reps;
    return total_ms / static_cast<double>(reps);
}

int run_json_mode(const Args& args) {
    const std::string path = args.get_string("json", "");
    const auto max_n = static_cast<std::size_t>(args.get_int("max-n", 50000));
    const double min_time_ms = args.get_double("min-time-ms", 200.0);
    const auto algos = args.get_string_list("algos", perf_algos());

    std::ofstream out(path);
    if (!out) {
        std::cerr << "error: cannot open " << path << '\n';
        return 1;
    }
    out << "{\n  \"schema\": 1,\n"
        << "  \"sweep\": {\"shape\": \"layered\", \"procs\": 8, \"ccr\": 1.0, "
           "\"beta\": 0.5, \"seed\": 2007},\n"
        << "  \"points\": [";
    bool first = true;
    const auto emit = [&](const std::string& name, const Scheduler& scheduler, std::size_t n,
                          std::size_t max_reps) {
        const Problem problem = workload::make_instance(runtime_params(n), 2007);
        std::size_t reps = 0;
        const double mean_ms = measure_mean_ms(scheduler, problem, min_time_ms, reps, max_reps);
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "%s\n    {\"algo\": \"%s\", \"n\": %zu, \"mean_ms\": %.4f, "
                      "\"reps\": %zu}",
                      first ? "" : ",", name.c_str(), n, mean_ms, reps);
        out << buf;
        std::cout << name << "/" << n << ": " << mean_ms << " ms (" << reps << " reps)\n";
        first = false;
    };
    for (const auto& name : algos) {
        const auto scheduler = make_scheduler(name);
        for (const std::size_t n : kPerfSizes) {
            if (n > max_n) continue;
            emit(name, *scheduler, n, std::numeric_limits<std::size_t>::max());
        }
        for (const BigNPoint& point : kBigNPoints) {
            if (point.n > max_n) continue;
            emit(name, *scheduler, point.n, point.max_reps);
        }
    }
    out << "\n  ]\n}\n";
    return out ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
    const Args args(argc, argv);
    if (args.has("json")) return run_json_mode(args);
    register_all();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
