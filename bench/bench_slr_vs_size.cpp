// E1 — Average SLR vs DAG size (the "SLR vs number of tasks" figure).
//
// Random layered DAGs, P = 8, CCR fixed (default 1.0, override with --ccr),
// beta = 0.5.  Columns: the default comparison set.
#include "common.hpp"
#include "core/registry.hpp"

using namespace tsched;
using namespace tsched::bench;

int main(int argc, char** argv) {
    const Args args(argc, argv);
    BenchConfig config;
    config.experiment = "E1";
    config.title = "average SLR vs DAG size (random layered graphs, P=8)";
    config.axis = "tasks";
    config.algos = default_comparison_set();
    apply_common_flags(config, args);

    const double ccr = args.get_double("ccr", 1.0);
    const double beta = args.get_double("beta", 0.5);
    const auto sizes = args.get_int_list("sizes", {20, 40, 60, 80, 100, 150, 200});

    std::vector<SweepPoint> points;
    for (const auto n : sizes) {
        workload::InstanceParams params;
        params.shape = workload::Shape::kLayered;
        params.size = static_cast<std::size_t>(n);
        params.num_procs = 8;
        params.ccr = ccr;
        params.beta = beta;
        points.push_back({std::to_string(n), params});
    }
    run_sweep(config, points, {Metric::kSlr});
    return 0;
}
