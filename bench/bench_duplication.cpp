// E11 — Duplication study: how much task duplication buys (makespan) and
// costs (extra placements) on communication-dominated graphs, comparing the
// duplication family (ILS-D, DSH, BTDH) against their non-duplicating
// peers.
#include "common.hpp"
#include "core/registry.hpp"

using namespace tsched;
using namespace tsched::bench;

int main(int argc, char** argv) {
    const Args args(argc, argv);
    BenchConfig config;
    config.experiment = "E11";
    config.title = "duplication study: SLR and duplicate count at high CCR (P=6)";
    config.axis = "workload";
    config.algos = {"ils", "ils-d", "heft", "dsh", "btdh"};
    config.trials = 15;
    apply_common_flags(config, args);

    const double ccr = args.get_double("ccr", 8.0);

    std::vector<SweepPoint> points;
    {
        workload::InstanceParams params;
        params.shape = workload::Shape::kForkJoin;
        params.size = 12;  // 12-wide fork-join, 4 stages
        params.num_procs = 6;
        params.ccr = ccr;
        params.beta = 0.5;
        points.push_back({"forkjoin w=12", params});
    }
    {
        workload::InstanceParams params;
        params.shape = workload::Shape::kOutTree;
        params.size = 4;  // fanout-3 tree, depth 4
        params.num_procs = 6;
        params.ccr = ccr;
        params.beta = 0.5;
        points.push_back({"outtree d=4", params});
    }
    {
        workload::InstanceParams params;
        params.shape = workload::Shape::kLayered;
        params.size = 80;
        params.num_procs = 6;
        params.ccr = ccr;
        params.beta = 0.5;
        points.push_back({"random n=80", params});
    }
    {
        workload::InstanceParams params;
        params.shape = workload::Shape::kLayered;
        params.size = 80;
        params.num_procs = 6;
        params.ccr = 1.0;  // control point: duplication should stay modest
        params.beta = 0.5;
        points.push_back({"random n=80 ccr=1", params});
    }
    run_sweep(config, points, {Metric::kSlr, Metric::kDuplicates, Metric::kSchedTimeMs});
    return 0;
}
