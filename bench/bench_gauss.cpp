// E6 — Gaussian elimination application graphs: average SLR vs matrix size
// and vs processor count (two sub-tables, matching the paper-style
// application-graph figures).
#include "common.hpp"
#include "core/registry.hpp"

using namespace tsched;
using namespace tsched::bench;

int main(int argc, char** argv) {
    const Args args(argc, argv);
    BenchConfig config;
    config.experiment = "E6";
    config.title = "Gaussian elimination graphs: SLR vs matrix size (P=8) and vs P (m=15)";
    config.axis = "matrix size m";
    config.algos = default_comparison_set();
    apply_common_flags(config, args);

    const double ccr = args.get_double("ccr", 1.0);
    const double beta = args.get_double("beta", 0.5);

    // Sub-figure (a): SLR vs matrix dimension at P = 8.
    std::vector<SweepPoint> size_points;
    for (const auto m : args.get_int_list("sizes", {5, 10, 15, 20})) {
        workload::InstanceParams params;
        params.shape = workload::Shape::kGauss;
        params.size = static_cast<std::size_t>(m);
        params.num_procs = 8;
        params.ccr = ccr;
        params.beta = beta;
        // n = (m^2 + m - 2)/2 tasks.
        const auto n = (static_cast<std::size_t>(m) * static_cast<std::size_t>(m) +
                        static_cast<std::size_t>(m) - 2) / 2;
        size_points.push_back({std::to_string(m) + " (n=" + std::to_string(n) + ")", params});
    }
    run_sweep(config, size_points, {Metric::kSlr});

    // Sub-figure (b): SLR vs processor count at m = 15.
    BenchConfig proc_config = config;
    proc_config.axis = "procs";
    std::vector<SweepPoint> proc_points;
    for (const auto p : args.get_int_list("procs", {2, 4, 8, 16})) {
        workload::InstanceParams params;
        params.shape = workload::Shape::kGauss;
        params.size = 15;
        params.num_procs = static_cast<std::size_t>(p);
        params.ccr = ccr;
        params.beta = beta;
        proc_points.push_back({std::to_string(p), params});
    }
    run_sweep(proc_config, proc_points, {Metric::kSlr});
    return 0;
}
