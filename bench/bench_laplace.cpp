// E8 — Laplace equation (2-D wavefront) application graphs: average SLR vs
// grid size.  Wavefront graphs have long dependence chains with narrow
// parallelism, stressing the processor-selection policies.
#include "common.hpp"
#include "core/registry.hpp"

using namespace tsched;
using namespace tsched::bench;

int main(int argc, char** argv) {
    const Args args(argc, argv);
    BenchConfig config;
    config.experiment = "E8";
    config.title = "Laplace wavefront graphs: SLR vs grid size (P=8)";
    config.axis = "grid g (n=g*g)";
    config.algos = default_comparison_set();
    apply_common_flags(config, args);

    const double ccr = args.get_double("ccr", 1.0);
    const double beta = args.get_double("beta", 0.5);

    std::vector<SweepPoint> points;
    for (const auto g : args.get_int_list("grids", {5, 8, 12, 16})) {
        workload::InstanceParams params;
        params.shape = workload::Shape::kLaplace;
        params.size = static_cast<std::size_t>(g);
        params.num_procs = 8;
        params.ccr = ccr;
        params.beta = beta;
        points.push_back({std::to_string(g), params});
    }
    run_sweep(config, points, {Metric::kSlr});
    return 0;
}
